"""The SSP data-serving component.

Per the paper (section IV): "There is no computation involved on the data
at the SSP and it simply maintains a large hashtable for encrypted metadata
objects and encrypted data blocks."  The server therefore exposes nothing
but put/get/delete/list on opaque byte strings keyed by
:class:`~repro.storage.blobs.BlobId`.

The server is *untrusted*: it stores whatever bytes arrive and returns
them verbatim.  Confidentiality and integrity live entirely in the client
(encryption before upload, signature verification after download).  The
test suite includes an "honest-but-curious audit" that scans everything a
server has ever stored for plaintext leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import (BlobNotFound, CasConflictError, StaleEpochError,
                      StorageError, TransientStorageError)
from .accounting import ServerStats
from .blobs import BlobId

#: Width of the plaintext big-endian epoch prefix on fence (lease) blobs.
EPOCH_PREFIX_BYTES = 8


def fence_epoch(raw: bytes | None) -> int:
    """Mechanically read the epoch prefix of a fence blob.

    The SSP performs no crypto: the first 8 bytes of a lease blob are a
    plaintext big-endian fencing epoch, put there exactly so an untrusted
    store can enforce "no writes below the current epoch" without keys.
    An absent or short blob reads as epoch 0 (fail open: no lease, no
    fencing).
    """
    if raw is None or len(raw) < EPOCH_PREFIX_BYTES:
        return 0
    return int.from_bytes(raw[:EPOCH_PREFIX_BYTES], "big")


#: Sub-operation kinds a batch frame may carry (no nested batches).
BATCH_KINDS = ("put", "get", "delete", "exists", "put_if",
               "put_fenced", "delete_fenced")

#: Sub-reply statuses.  ``unattempted`` marks the tail after the batch
#: stopped at a failed or fenced sub-op -- those ops never reached the
#: store and are safe to re-send verbatim.
REPLY_STATUSES = ("ok", "missing", "conflict", "fenced", "error",
                  "unattempted")


@dataclass(frozen=True)
class BatchOp:
    """One sub-operation inside an ``OP_BATCH`` frame."""

    kind: str
    blob_id: BlobId
    payload: bytes | None = None
    expected: bytes | None = None  # put_if only
    fence: BlobId | None = None    # fenced ops only
    epoch: int | None = None       # fenced ops only
    #: Optional per-sub-op trace context (obs.wiretrace.TraceContext);
    #: rides the wire behind the sub-opcode's TRACE_FLAG bit.
    ctx: object | None = None

    @classmethod
    def put(cls, blob_id: BlobId, payload: bytes) -> "BatchOp":
        return cls("put", blob_id, payload=payload)

    @classmethod
    def get(cls, blob_id: BlobId) -> "BatchOp":
        return cls("get", blob_id)

    @classmethod
    def delete(cls, blob_id: BlobId) -> "BatchOp":
        return cls("delete", blob_id)

    @classmethod
    def exists(cls, blob_id: BlobId) -> "BatchOp":
        return cls("exists", blob_id)

    @classmethod
    def put_if(cls, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> "BatchOp":
        return cls("put_if", blob_id, payload=payload, expected=expected)

    @classmethod
    def put_fenced(cls, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> "BatchOp":
        return cls("put_fenced", blob_id, payload=payload,
                   fence=fence, epoch=epoch)

    @classmethod
    def delete_fenced(cls, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> "BatchOp":
        return cls("delete_fenced", blob_id, fence=fence, epoch=epoch)

    def sent_bytes(self) -> int:
        """Uplink payload bytes this sub-op carries (for cost parity)."""
        return len(self.payload) if self.payload is not None else 0


@dataclass
class BatchReply:
    """Per-sub-op outcome of a batch.

    ``missing`` (get of an absent blob) and ``conflict`` (put_if lost the
    CAS; ``payload`` carries the current bytes, None = absent) are
    *terminal per-sub-op* outcomes: the batch keeps going.  ``fenced``
    and ``error`` stop the batch -- everything after them is
    ``unattempted``.
    """

    status: str
    payload: bytes | None = None  # get result / conflict current bytes
    epoch: int | None = None      # fenced: the store's current epoch
    message: str = ""             # error: human-readable cause
    transient: bool = False       # error: retryable per the taxonomy

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def raise_for_status(self) -> None:
        """Re-raise this reply as the exception a single op would raise."""
        if self.status in ("ok", "unattempted"):
            return
        if self.status == "missing":
            raise BlobNotFound("batched get: blob missing")
        if self.status == "conflict":
            raise CasConflictError("batched cas conflict",
                                   current=self.payload)
        if self.status == "fenced":
            raise StaleEpochError("batched fenced write rejected",
                                  current_epoch=self.epoch or 0)
        if self.transient:
            raise TransientStorageError(self.message or "batched op failed")
        raise StorageError(self.message or "batched op failed")


def apply_batch(server: "StorageServer",
                ops: Sequence[BatchOp]) -> list["BatchReply"]:
    """Apply sub-ops in order through ``server``'s own single-op methods.

    Dispatching through the instance keeps every interception layer
    honest: fault injectors, tampering wrappers, and per-blob stats all
    see the sub-ops exactly as they would single requests.  Application
    stops at the first ``error`` or ``fenced`` sub-op (the tail reads
    ``unattempted``); ``missing`` and ``conflict`` are answers, not
    failures, and do not stop the batch.  ``ClientCrashed`` is not a
    storage outcome and propagates.
    """
    for op in ops:
        if op.kind not in BATCH_KINDS:
            raise StorageError(f"unknown batch sub-op kind {op.kind!r}")
    replies: list[BatchReply] = []
    stopped = False
    for op in ops:
        if stopped:
            replies.append(BatchReply("unattempted"))
            continue
        try:
            if op.kind == "put":
                server.put(op.blob_id, op.payload or b"")
                replies.append(BatchReply("ok"))
            elif op.kind == "get":
                replies.append(BatchReply("ok",
                                          payload=server.get(op.blob_id)))
            elif op.kind == "delete":
                server.delete(op.blob_id)
                replies.append(BatchReply("ok"))
            elif op.kind == "exists":
                present = server.exists(op.blob_id)
                replies.append(BatchReply(
                    "ok", payload=b"\x01" if present else b"\x00"))
            elif op.kind == "put_if":
                server.put_if(op.blob_id, op.payload or b"", op.expected)
                replies.append(BatchReply("ok"))
            elif op.kind == "put_fenced":
                server.put_fenced(op.blob_id, op.payload or b"",
                                  op.fence, op.epoch or 0)
                replies.append(BatchReply("ok"))
            else:  # delete_fenced
                server.delete_fenced(op.blob_id, op.fence, op.epoch or 0)
                replies.append(BatchReply("ok"))
        except BlobNotFound:
            replies.append(BatchReply("missing"))
        except CasConflictError as exc:
            replies.append(BatchReply("conflict", payload=exc.current))
        except StaleEpochError as exc:
            replies.append(BatchReply("fenced",
                                      epoch=exc.current_epoch))
            stopped = True
        except TransientStorageError as exc:
            replies.append(BatchReply("error", message=str(exc),
                                      transient=True))
            stopped = True
        except StorageError as exc:
            replies.append(BatchReply("error", message=str(exc)))
            stopped = True
    return replies


class StorageServer:
    """In-memory SSP: a hashtable of encrypted blobs."""

    def __init__(self, name: str = "ssp"):
        self.name = name
        self.stats = ServerStats()
        self._blobs: dict[BlobId, bytes] = {}

    # -- the wire protocol ---------------------------------------------------

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        """Store (or overwrite) a blob."""
        self.stats.record_put(blob_id.kind, len(payload))
        self._blobs[blob_id] = bytes(payload)

    def get(self, blob_id: BlobId) -> bytes:
        """Fetch a blob; raises :class:`BlobNotFound` if absent."""
        try:
            payload = self._blobs[blob_id]
        except KeyError:
            self.stats.record_miss()
            raise BlobNotFound(str(blob_id)) from None
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def delete(self, blob_id: BlobId) -> None:
        """Remove a blob; absent ids are ignored (idempotent delete)."""
        removed = self._blobs.pop(blob_id, None)
        self.stats.record_delete(blob_id.kind,
                                 len(removed) if removed else 0)

    def exists(self, blob_id: BlobId) -> bool:
        return blob_id in self._blobs

    # -- coordination primitives (CAS + epoch fencing) -----------------------

    def _peek(self, blob_id: BlobId) -> bytes | None:
        """Current bytes of a blob without stats side effects (or None).

        Internal primitive behind :meth:`put_if` and the fence checks;
        backends with their own storage (disk, remote) override it.
        """
        return self._blobs.get(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        """Compare-and-swap: store ``payload`` only if the blob's current
        bytes equal ``expected`` (``None`` = must be absent).

        On mismatch raises the *terminal* :class:`CasConflictError`
        carrying the current bytes, so the loser can re-inspect at the
        protocol level instead of blind-retrying.
        """
        current = self._peek(blob_id)
        if current != expected:
            raise CasConflictError(f"cas conflict on {blob_id}",
                                   current=current)
        self.put(blob_id, payload)

    def _check_fence(self, fence: BlobId, epoch: int) -> None:
        current = fence_epoch(self._peek(fence))
        if epoch < current:
            raise StaleEpochError(
                f"fenced write at epoch {epoch} rejected: "
                f"{fence} is at epoch {current}",
                current_epoch=current)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        """Store a blob only if ``fence`` has not advanced past ``epoch``.

        The epoch check is mechanical (plaintext prefix); a zombie writer
        whose lease was taken over earns a terminal
        :class:`StaleEpochError` instead of clobbering its successor.
        """
        self._check_fence(fence, epoch)
        self.put(blob_id, payload)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        """Fenced counterpart of :meth:`delete` (idempotent on absence)."""
        self._check_fence(fence, epoch)
        self.delete(blob_id)

    # -- batched sub-ops (one round trip on the wire) ------------------------

    def batch(self, ops: Sequence[BatchOp]) -> list[BatchReply]:
        """Apply a sequence of sub-ops; one wire round trip per call.

        In-process backends apply sequentially via :func:`apply_batch`;
        the remote proxy ships a single ``OP_BATCH`` frame instead.
        """
        return apply_batch(self, ops)

    def get_many(self, blob_ids: Sequence[BlobId]) -> list[bytes | None]:
        """Fetch several blobs in one round trip; ``None`` marks absent."""
        out: list[bytes | None] = []
        for reply in self.batch([BatchOp.get(bid) for bid in blob_ids]):
            if reply.status == "missing":
                out.append(None)
                continue
            reply.raise_for_status()
            out.append(reply.payload)
        return out

    def put_many(self,
                 items: Sequence[tuple[BlobId, bytes]]) -> None:
        """Store several blobs in one round trip; raises on first failure."""
        for reply in self.batch(
                [BatchOp.put(bid, payload) for bid, payload in items]):
            reply.raise_for_status()

    def delete_many(self, blob_ids: Sequence[BlobId]) -> None:
        """Remove several blobs in one round trip (idempotent per blob)."""
        for reply in self.batch(
                [BatchOp.delete(bid) for bid in blob_ids]):
            reply.raise_for_status()

    def list_kind(self, kind: str) -> Iterator[BlobId]:
        """Enumerate stored ids of one kind (used by audits and ablations)."""
        return (bid for bid in self._blobs if bid.kind == kind)

    # -- capacity / audit helpers ------------------------------------------------

    def blob_count(self) -> int:
        return len(self._blobs)

    def stored_bytes(self, kind: str | None = None) -> int:
        """Total stored payload bytes, optionally for one blob kind."""
        return sum(len(payload) for bid, payload in self._blobs.items()
                   if kind is None or bid.kind == kind)

    def raw_blobs(self) -> dict[BlobId, bytes]:
        """Everything the (curious) SSP can see. For audits and attacks."""
        return dict(self._blobs)

    def snapshot_blobs(self) -> dict[BlobId, bytes]:
        """Point-in-time copy of the store (crash-harness checkpoints)."""
        return dict(self._blobs)

    def restore_blobs(self, snapshot: dict[BlobId, bytes]) -> None:
        """Reset the store to a prior :meth:`snapshot_blobs` state."""
        self._blobs = dict(snapshot)
