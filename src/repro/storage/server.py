"""The SSP data-serving component.

Per the paper (section IV): "There is no computation involved on the data
at the SSP and it simply maintains a large hashtable for encrypted metadata
objects and encrypted data blocks."  The server therefore exposes nothing
but put/get/delete/list on opaque byte strings keyed by
:class:`~repro.storage.blobs.BlobId`.

The server is *untrusted*: it stores whatever bytes arrive and returns
them verbatim.  Confidentiality and integrity live entirely in the client
(encryption before upload, signature verification after download).  The
test suite includes an "honest-but-curious audit" that scans everything a
server has ever stored for plaintext leakage.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import BlobNotFound, CasConflictError, StaleEpochError
from .accounting import ServerStats
from .blobs import BlobId

#: Width of the plaintext big-endian epoch prefix on fence (lease) blobs.
EPOCH_PREFIX_BYTES = 8


def fence_epoch(raw: bytes | None) -> int:
    """Mechanically read the epoch prefix of a fence blob.

    The SSP performs no crypto: the first 8 bytes of a lease blob are a
    plaintext big-endian fencing epoch, put there exactly so an untrusted
    store can enforce "no writes below the current epoch" without keys.
    An absent or short blob reads as epoch 0 (fail open: no lease, no
    fencing).
    """
    if raw is None or len(raw) < EPOCH_PREFIX_BYTES:
        return 0
    return int.from_bytes(raw[:EPOCH_PREFIX_BYTES], "big")


class StorageServer:
    """In-memory SSP: a hashtable of encrypted blobs."""

    def __init__(self, name: str = "ssp"):
        self.name = name
        self.stats = ServerStats()
        self._blobs: dict[BlobId, bytes] = {}

    # -- the wire protocol ---------------------------------------------------

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        """Store (or overwrite) a blob."""
        self.stats.record_put(blob_id.kind, len(payload))
        self._blobs[blob_id] = bytes(payload)

    def get(self, blob_id: BlobId) -> bytes:
        """Fetch a blob; raises :class:`BlobNotFound` if absent."""
        try:
            payload = self._blobs[blob_id]
        except KeyError:
            self.stats.record_miss()
            raise BlobNotFound(str(blob_id)) from None
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def delete(self, blob_id: BlobId) -> None:
        """Remove a blob; absent ids are ignored (idempotent delete)."""
        removed = self._blobs.pop(blob_id, None)
        self.stats.record_delete(blob_id.kind,
                                 len(removed) if removed else 0)

    def exists(self, blob_id: BlobId) -> bool:
        return blob_id in self._blobs

    # -- coordination primitives (CAS + epoch fencing) -----------------------

    def _peek(self, blob_id: BlobId) -> bytes | None:
        """Current bytes of a blob without stats side effects (or None).

        Internal primitive behind :meth:`put_if` and the fence checks;
        backends with their own storage (disk, remote) override it.
        """
        return self._blobs.get(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        """Compare-and-swap: store ``payload`` only if the blob's current
        bytes equal ``expected`` (``None`` = must be absent).

        On mismatch raises the *terminal* :class:`CasConflictError`
        carrying the current bytes, so the loser can re-inspect at the
        protocol level instead of blind-retrying.
        """
        current = self._peek(blob_id)
        if current != expected:
            raise CasConflictError(f"cas conflict on {blob_id}",
                                   current=current)
        self.put(blob_id, payload)

    def _check_fence(self, fence: BlobId, epoch: int) -> None:
        current = fence_epoch(self._peek(fence))
        if epoch < current:
            raise StaleEpochError(
                f"fenced write at epoch {epoch} rejected: "
                f"{fence} is at epoch {current}",
                current_epoch=current)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        """Store a blob only if ``fence`` has not advanced past ``epoch``.

        The epoch check is mechanical (plaintext prefix); a zombie writer
        whose lease was taken over earns a terminal
        :class:`StaleEpochError` instead of clobbering its successor.
        """
        self._check_fence(fence, epoch)
        self.put(blob_id, payload)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        """Fenced counterpart of :meth:`delete` (idempotent on absence)."""
        self._check_fence(fence, epoch)
        self.delete(blob_id)

    def list_kind(self, kind: str) -> Iterator[BlobId]:
        """Enumerate stored ids of one kind (used by audits and ablations)."""
        return (bid for bid in self._blobs if bid.kind == kind)

    # -- capacity / audit helpers ------------------------------------------------

    def blob_count(self) -> int:
        return len(self._blobs)

    def stored_bytes(self, kind: str | None = None) -> int:
        """Total stored payload bytes, optionally for one blob kind."""
        return sum(len(payload) for bid, payload in self._blobs.items()
                   if kind is None or bid.kind == kind)

    def raw_blobs(self) -> dict[BlobId, bytes]:
        """Everything the (curious) SSP can see. For audits and attacks."""
        return dict(self._blobs)

    def snapshot_blobs(self) -> dict[BlobId, bytes]:
        """Point-in-time copy of the store (crash-harness checkpoints)."""
        return dict(self._blobs)

    def restore_blobs(self, snapshot: dict[BlobId, bytes]) -> None:
        """Reset the store to a prior :meth:`snapshot_blobs` state."""
        self._blobs = dict(snapshot)
