"""The SSP data-serving component.

Per the paper (section IV): "There is no computation involved on the data
at the SSP and it simply maintains a large hashtable for encrypted metadata
objects and encrypted data blocks."  The server therefore exposes nothing
but put/get/delete/list on opaque byte strings keyed by
:class:`~repro.storage.blobs.BlobId`.

The server is *untrusted*: it stores whatever bytes arrive and returns
them verbatim.  Confidentiality and integrity live entirely in the client
(encryption before upload, signature verification after download).  The
test suite includes an "honest-but-curious audit" that scans everything a
server has ever stored for plaintext leakage.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import BlobNotFound
from .accounting import ServerStats
from .blobs import BlobId


class StorageServer:
    """In-memory SSP: a hashtable of encrypted blobs."""

    def __init__(self, name: str = "ssp"):
        self.name = name
        self.stats = ServerStats()
        self._blobs: dict[BlobId, bytes] = {}

    # -- the wire protocol ---------------------------------------------------

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        """Store (or overwrite) a blob."""
        self.stats.record_put(blob_id.kind, len(payload))
        self._blobs[blob_id] = bytes(payload)

    def get(self, blob_id: BlobId) -> bytes:
        """Fetch a blob; raises :class:`BlobNotFound` if absent."""
        try:
            payload = self._blobs[blob_id]
        except KeyError:
            self.stats.record_miss()
            raise BlobNotFound(str(blob_id)) from None
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def delete(self, blob_id: BlobId) -> None:
        """Remove a blob; absent ids are ignored (idempotent delete)."""
        removed = self._blobs.pop(blob_id, None)
        self.stats.record_delete(blob_id.kind,
                                 len(removed) if removed else 0)

    def exists(self, blob_id: BlobId) -> bool:
        return blob_id in self._blobs

    def list_kind(self, kind: str) -> Iterator[BlobId]:
        """Enumerate stored ids of one kind (used by audits and ablations)."""
        return (bid for bid in self._blobs if bid.kind == kind)

    # -- capacity / audit helpers ------------------------------------------------

    def blob_count(self) -> int:
        return len(self._blobs)

    def stored_bytes(self, kind: str | None = None) -> int:
        """Total stored payload bytes, optionally for one blob kind."""
        return sum(len(payload) for bid, payload in self._blobs.items()
                   if kind is None or bid.kind == kind)

    def raw_blobs(self) -> dict[BlobId, bytes]:
        """Everything the (curious) SSP can see. For audits and attacks."""
        return dict(self._blobs)

    def snapshot_blobs(self) -> dict[BlobId, bytes]:
        """Point-in-time copy of the store (crash-harness checkpoints)."""
        return dict(self._blobs)

    def restore_blobs(self, snapshot: dict[BlobId, bytes]) -> None:
        """Reset the store to a prior :meth:`snapshot_blobs` state."""
        self._blobs = dict(snapshot)
