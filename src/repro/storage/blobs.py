"""Blob identifiers for the SSP's flat store.

The paper's SSP "simply maintains a large hashtable for encrypted metadata
objects and encrypted data blocks, both indexed by the inode numbers and
either hash of user/group ID (for Scheme-1) or CAP ID (Scheme-2)"
(section IV).  This module defines that index space:

* ``meta/<inode>/<selector>``  -- encrypted metadata replicas
* ``data/<inode>/<selector>``  -- encrypted data blocks / directory tables
* ``super/<user-hash>``        -- per-user encrypted superblocks
* ``groupkey/<group>/<user-hash>`` -- group keys wrapped per member
* ``lockbox/<inode>/<user-hash>``  -- Scheme-2 split-point lockboxes
* ``journal/<user-hash>``      -- per-user write-ahead intent journals
  (MEK-encrypted + signed client-side; see :mod:`repro.fs.journal`)
* ``lease/<inode>``            -- per-inode signed lease blobs with a
  plaintext fencing-epoch prefix (see :mod:`repro.fs.lease`)
* ``plan/0/-``                 -- the signed shard-rebalance plan with a
  plaintext plan-epoch prefix (see :mod:`repro.storage.rebalance`)

``selector`` is a CAP id under Scheme-2 or a hashed principal id under
Scheme-1; baselines that keep a single copy use the selector ``"-"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import hashes

META = "meta"
DATA = "data"
SUPERBLOCK = "super"
GROUP_KEY = "groupkey"
LOCKBOX = "lockbox"
JOURNAL = "journal"
LEASE = "lease"
PLAN = "plan"

#: Selector for single-copy objects (baselines, shared structures).
SHARED = "-"


def principal_hash(principal_id: str) -> str:
    """Hash of a user/group id: the SSP indexes by this, never the raw id."""
    return hashes.hexdigest(principal_id.encode("utf-8"))[:16]


@dataclass(frozen=True, order=True)
class BlobId:
    """A fully-qualified key into the SSP hashtable."""

    kind: str
    inode: int
    selector: str

    def __str__(self) -> str:
        return f"{self.kind}/{self.inode}/{self.selector}"


def meta_blob(inode: int, selector: str = SHARED) -> BlobId:
    return BlobId(META, inode, selector)


def data_blob(inode: int, selector: str = SHARED) -> BlobId:
    return BlobId(DATA, inode, selector)


def superblock_blob(user_id: str) -> BlobId:
    return BlobId(SUPERBLOCK, 0, principal_hash(user_id))


def group_key_blob(group_id: str, user_id: str) -> BlobId:
    return BlobId(GROUP_KEY, 0,
                  f"{principal_hash(group_id)}/{principal_hash(user_id)}")


def lockbox_blob(inode: int, user_id: str) -> BlobId:
    return BlobId(LOCKBOX, inode, principal_hash(user_id))


def journal_blob(user_id: str) -> BlobId:
    """One write-ahead intent journal per user (inode slot 0)."""
    return BlobId(JOURNAL, 0, principal_hash(user_id))


def lease_blob(inode: int) -> BlobId:
    """The per-inode lease blob every writer of that inode contends on."""
    return BlobId(LEASE, inode, SHARED)


def plan_blob() -> BlobId:
    """The single rebalance-plan slot every rebalancer contends on."""
    return BlobId(PLAN, 0, SHARED)


def parse_blob_id(name: str) -> BlobId:
    """Inverse of ``str(blob_id)`` (``kind/inode/selector``)."""
    kind, inode, selector = name.split("/", 2)
    return BlobId(kind, int(inode), selector)
