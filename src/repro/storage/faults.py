"""Fault-injecting SSP variants.

The paper's threat model (section VII) trusts the SSP to faithfully
store/retrieve data but not with confidentiality or access control; a
malicious SSP can still tamper, roll back, or fail requests.  These wrappers
simulate those behaviours so the test suite can assert that every one is
*detected* by client-side verification (the deterrent the paper pairs with
SLA penalties).

All three subclass :class:`~repro.storage.server.StorageServer` and
override the single-op methods, which is exactly how the base class's
``batch()`` applies sub-ops -- so a malicious SSP tampers, rolls back,
or fails *inside* an ``OP_BATCH`` frame with no extra code, and the
batched-read paths inherit the same detection guarantees (asserted by
the batch fuzz/chaos suites).
"""

from __future__ import annotations

import random
from typing import Callable

from ..errors import TransientStorageError
from .blobs import BlobId
from .server import StorageServer


class TamperingServer(StorageServer):
    """Flips a bit of selected blobs on the way out.

    ``should_tamper`` picks victim blobs; by default every get is tampered.
    """

    def __init__(self, name: str = "evil-ssp",
                 should_tamper: Callable[[BlobId], bool] | None = None,
                 bit_index: int = 0):
        super().__init__(name)
        self._should_tamper = should_tamper or (lambda blob_id: True)
        self._bit_index = bit_index
        self.tamper_count = 0

    def get(self, blob_id: BlobId) -> bytes:
        payload = super().get(blob_id)
        if not self._should_tamper(blob_id) or not payload:
            return payload
        self.tamper_count += 1
        corrupted = bytearray(payload)
        byte_index = (self._bit_index // 8) % len(corrupted)
        corrupted[byte_index] ^= 1 << (self._bit_index % 8)
        return bytes(corrupted)


class RollbackServer(StorageServer):
    """Serves the *first* version ever written for selected blobs.

    Models a rollback attack: the SSP pretends later updates never
    happened.  Full fork-consistency defences are SUNDR's contribution
    (the paper cites it as complementary); SHAROES detects rollback of
    *individual* objects when their keys were rotated in the meantime.
    """

    def __init__(self, name: str = "rollback-ssp",
                 should_rollback: Callable[[BlobId], bool] | None = None):
        super().__init__(name)
        self._should_rollback = should_rollback or (lambda blob_id: True)
        self._first_version: dict[BlobId, bytes] = {}

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._first_version.setdefault(blob_id, bytes(payload))
        super().put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        payload = super().get(blob_id)
        if self._should_rollback(blob_id):
            return self._first_version.get(blob_id, payload)
        return payload


class FlakyServer(StorageServer):
    """Fails a fraction of requests with :class:`TransientStorageError`.

    Deterministic given the seed, so tests can replay failure sequences.
    A standalone in-memory flaky SSP; the delegating wrapper variant
    (composable with any backend) lives in
    :mod:`repro.storage.resilient`.
    """

    def __init__(self, name: str = "flaky-ssp", failure_rate: float = 0.1,
                 seed: int = 0):
        super().__init__(name)
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._failure_rate = failure_rate
        self._rng = random.Random(seed)

    def _maybe_fail(self, action: str, blob_id: BlobId) -> None:
        if self._rng.random() < self._failure_rate:
            raise TransientStorageError(
                f"{self.name}: injected {action} failure for {blob_id}")

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._maybe_fail("put", blob_id)
        super().put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        self._maybe_fail("get", blob_id)
        return super().get(blob_id)
