"""Fault-injecting SSP variants.

The paper's threat model (section VII) trusts the SSP to faithfully
store/retrieve data but not with confidentiality or access control; a
malicious SSP can still tamper, roll back, or fail requests.  These
injectors simulate those behaviours so the test suite can assert that
every one is *detected* by client-side verification (the deterrent the
paper pairs with SLA penalties).

All three are delegating :class:`~repro.storage.resilient.ServerWrapper`
decorators, so they compose with any backend -- a plain in-memory
server, a disk store, a remote proxy, or one shard of a
:class:`~repro.storage.shards.ShardedServer` -- and with each other,
unambiguously.  Constructed without an ``inner`` they own a fresh
:class:`~repro.storage.server.StorageServer`, which preserves the old
standalone usage (``TamperingServer()`` is a complete malicious SSP).
The wrapper base routes ``batch()`` through the instance's own
single-op methods, so a malicious SSP tampers, rolls back, or fails
*inside* an ``OP_BATCH`` frame with no extra code, and the batched-read
paths inherit the same detection guarantees (asserted by the batch
fuzz/chaos suites).

:class:`FlakyServer` here is the transient-fault injector from
:mod:`repro.storage.resilient` specialised to its historical contract:
one ``failure_rate`` knob covering ``put``/``get`` only (the ops the
original standalone class failed), adjustable after construction.
"""

from __future__ import annotations

from typing import Callable

from .blobs import BlobId
from .resilient import FlakyServer as _WrappedFlakyServer
from .resilient import ServerWrapper
from .server import StorageServer


class TamperingServer(ServerWrapper):
    """Flips a bit of selected blobs on the way out.

    ``should_tamper`` picks victim blobs; by default every get is
    tampered.
    """

    def __init__(self, name: str = "evil-ssp",
                 should_tamper: Callable[[BlobId], bool] | None = None,
                 bit_index: int = 0,
                 inner: StorageServer | None = None):
        super().__init__(inner if inner is not None
                         else StorageServer(name), name)
        self._should_tamper = should_tamper or (lambda blob_id: True)
        self._bit_index = bit_index
        self.tamper_count = 0

    def get(self, blob_id: BlobId) -> bytes:
        payload = self.inner.get(blob_id)
        if not self._should_tamper(blob_id) or not payload:
            return payload
        self.tamper_count += 1
        corrupted = bytearray(payload)
        byte_index = (self._bit_index // 8) % len(corrupted)
        corrupted[byte_index] ^= 1 << (self._bit_index % 8)
        return bytes(corrupted)


class RollbackServer(ServerWrapper):
    """Serves the *first* version ever written for selected blobs.

    Models a rollback attack: the SSP pretends later updates never
    happened.  Full fork-consistency defences are SUNDR's contribution
    (the paper cites it as complementary); SHAROES detects rollback of
    *individual* objects when their keys were rotated in the meantime.
    """

    def __init__(self, name: str = "rollback-ssp",
                 should_rollback: Callable[[BlobId], bool] | None = None,
                 inner: StorageServer | None = None):
        super().__init__(inner if inner is not None
                         else StorageServer(name), name)
        self._should_rollback = should_rollback or (lambda blob_id: True)
        self._first_version: dict[BlobId, bytes] = {}

    def _remember_first(self, blob_id: BlobId, payload: bytes) -> None:
        self._first_version.setdefault(blob_id, bytes(payload))

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._remember_first(blob_id, payload)
        self.inner.put(blob_id, payload)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self.inner.put_if(blob_id, payload, expected)
        self._remember_first(blob_id, payload)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self.inner.put_fenced(blob_id, payload, fence, epoch)
        self._remember_first(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        payload = self.inner.get(blob_id)
        if self._should_rollback(blob_id):
            return self._first_version.get(blob_id, payload)
        return payload


class FlakyServer(_WrappedFlakyServer):
    """Fails a fraction of ``put``/``get`` requests, adjustably.

    The historical standalone flaky SSP, now a thin specialisation of
    the composable wrapper in :mod:`repro.storage.resilient` (one
    implementation, two construction styles).  ``_failure_rate`` stays
    writable after construction -- provisioning code turns failures off
    while formatting a volume, then back on.
    """

    def __init__(self, name: str = "flaky-ssp",
                 failure_rate: float = 0.1, seed: int = 0,
                 inner: StorageServer | None = None):
        if not isinstance(failure_rate, dict):
            failure_rate = {"put": failure_rate, "get": failure_rate}
        super().__init__(inner if inner is not None
                         else StorageServer(name),
                         failure_rate=failure_rate, seed=seed, name=name)

    @property
    def _failure_rate(self) -> float:
        return self.rates["put"]

    @_failure_rate.setter
    def _failure_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self.rates = dict(self.rates, put=rate, get=rate)


class CrashingRebalancer:
    """Hook for :class:`~repro.storage.rebalance.Rebalancer`: kills the
    rebalance process at its k-th pipeline action.

    The rebalance analogue of
    :class:`~repro.storage.resilient.CrashingServer`: each hook firing
    is one pipeline action (a per-blob copy/verify/drop/rollback step
    or a flip/finish/abort transition), and with ``crash_after=k`` the
    k-th action raises :class:`~repro.errors.ClientCrashed` *before*
    the action runs -- everything between two hook calls is atomic in
    the single-threaded testbed, so sweeping k covers every partial
    pipeline state exhaustively.  With ``crash_after=None`` it only
    counts (the matrix's calibration run).  ``log`` records the
    ``(step, detail)`` sequence for debugging a failed cell.
    """

    def __init__(self, crash_after: int | None = None):
        self.crash_after = crash_after
        self.actions = 0
        self.log: list[tuple[str, str]] = []

    def __call__(self, step: str, detail: str) -> None:
        self.actions += 1
        self.log.append((step, detail))
        if self.crash_after is not None and \
                self.actions >= self.crash_after:
            from ..errors import ClientCrashed
            raise ClientCrashed(
                f"rebalancer crashed at action {self.actions} "
                f"({step} {detail})")
