"""Storage Service Provider substrate: the untrusted remote hashtable."""

from .accounting import (S3_2008_DOLLARS_PER_GB_MONTH, ServerStats,
                         monthly_storage_dollars)
from .blobs import (DATA, GROUP_KEY, LOCKBOX, META, SHARED, SUPERBLOCK,
                    BlobId, data_blob, group_key_blob, lockbox_blob,
                    meta_blob, principal_hash, superblock_blob)
from .faults import FlakyServer, RollbackServer, TamperingServer
from .disk import DiskStorageServer
from .resilient import (OutageServer, ResilientTransport, RetryPolicy,
                        ServerWrapper, SlowServer)
from .server import StorageServer
from .wire import RemoteStorageClient, SspServer

__all__ = [
    "BlobId",
    "StorageServer",
    "DiskStorageServer",
    "SspServer",
    "RemoteStorageClient",
    "TamperingServer",
    "RollbackServer",
    "FlakyServer",
    "ServerWrapper",
    "SlowServer",
    "OutageServer",
    "ResilientTransport",
    "RetryPolicy",
    "ServerStats",
    "monthly_storage_dollars",
    "S3_2008_DOLLARS_PER_GB_MONTH",
    "META",
    "DATA",
    "SUPERBLOCK",
    "GROUP_KEY",
    "LOCKBOX",
    "SHARED",
    "meta_blob",
    "data_blob",
    "superblock_blob",
    "group_key_blob",
    "lockbox_blob",
    "principal_hash",
]
