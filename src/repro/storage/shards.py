"""Sharded multi-SSP backend: consistent hashing + k-way replication.

One SSP process is a single point of failure.  The paper's untrusted-SSP
model makes removing it trust-free: integrity, confidentiality and
fencing all hold *per blob* at the client, so blobs can spread over any
number of storage servers that need no mutual trust (ROADMAP item 2;
UPSS layers the same encrypted-block-store abstraction over multiple
backends).

:class:`ShardedServer` presents the exact
:class:`~repro.storage.server.StorageServer` interface while routing
each blob by consistent hashing on ``(inode, selector)`` -- the
selector is a CAP id or hashed principal, so placement leaks nothing
the blob id did not already leak -- to one of N backend shards:

* every mutation (``put``/``put_if``/``put_fenced``/``delete``...)
  is applied to **k replica shards** (the k distinct ring successors);
  the op succeeds once any live replica applied it, and the missed
  replicas are remembered as *suspect* so their stale copies are never
  served and anti-entropy can re-replicate later;
* reads are served from the **nearest live replica** (first in ring
  preference order) and fail over through the remaining replicas on
  transient faults, open breakers, or a ``missing`` answer (one replica
  not holding a blob is under-replication, not authority that the blob
  is absent); a ``read_quorum`` > 1 additionally cross-checks copies so
  a divergent (tampered / rolled-back) replica is outvoted and flagged,
  never served;
* **lease blobs are replicated to every shard** and lease reads take
  the highest fencing epoch across live copies, so the epoch chain
  stays monotone for every client no matter which shards are up: a
  fenced write is pre-gated on the *maximum* live epoch before any
  replica applies it, every replica re-checks its own copy, and a
  fence rejection from any replica overrides an accept from a lagging
  one;
* each shard sits behind its own
  :class:`~repro.storage.resilient.ResilientTransport` (breaker
  cooldowns on the shared simulated clock), so a sick shard trips only
  its own breaker and the volume degrades to quorum operation;
* ``OP_BATCH`` frames are **fanned out per shard** in one
  scatter-gather round: mutations replicate into each target shard's
  sub-frame, reads ride their primary's sub-frame with single-op
  failover, ``put_if`` sub-ops are ordering barriers resolved through
  the quorum CAS, and the per-shard
  :meth:`ResilientTransport.batch` partial-retry applies unchanged
  below the fan-out.

The router itself holds no keys and verifies nothing -- like the SSPs
behind it, it is untrusted; what quorum does and does not defend
against is spelled out in ``docs/THREAT_MODEL.md``.

Anti-entropy (:meth:`ShardedServer.repair`) walks the same census
fsck's orphan scan sees -- the union of every shard's ``raw_blobs`` --
and restores full replication: re-replicates winners over missing or
suspect copies, applies pending deletes, and drops misplaced copies.
``repro shard-repair`` runs the pass from the CLI; ``repro campaign``
composes shard outages with the fault/crash/zombie adversaries into
one seeded run (see :mod:`repro.tools.campaign`).

Placement lives in an immutable :class:`RingSpec` so the topology can
change online: ``repro shard-rebalance`` executes a signed, persisted
:class:`~repro.storage.rebalance.RebalancePlan` (grow/shrink N, change
k) as an idempotent copy -> verify -> flip -> drop pipeline.  While a
plan is adopted the router runs **dual placement**: reads consult the
union of the old and new rings (authoritative ring first, quorum
voting unchanged) and every mutation fans out to both placements, so
a crashed rebalance can never strand a newer version on the losing
ring; :meth:`repair` resumes a flipped plan or rolls an unflipped one
back before its census pass, and copies it then drops because the plan
moved them are reported as ``migrated``, not misplaced.  Single-copy
reads additionally rotate their starting replica by a seeded
deterministic hash per (blob, attempt), spreading a hot blob's traffic
across its replica set instead of hammering the preference-first
shard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..errors import (BlobNotFound, CasConflictError, StaleEpochError,
                      TransientStorageError)
from ..sim.clock import SimClock
from .accounting import ServerStats
from .blobs import LEASE, PLAN, BlobId
from .resilient import (_BREAKER_GAUGE, OutageServer, ResilientTransport,
                        RetryPolicy)
from .server import (BatchOp, BatchReply, StorageServer, apply_batch,
                     fence_epoch)

#: Default per-shard transport policy: fail over fast (the *replicas*
#: are the retry story, not backoff), zero delay so the shared clock is
#: never perturbed, and a per-shard breaker whose cooldown elapses as
#: workload time advances.
SHARD_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                           max_delay_s=0.0, deadline_s=0.0, jitter=False,
                           breaker_threshold=4, breaker_cooldown_s=10.0,
                           cache_fallback=False)

#: Virtual nodes per shard on the hash ring (evens out placement).
_VNODES = 64


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (placement only, not security)."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8],
                          "big")


#: control-plane blob kinds replicated on every ring member (fencing
#: state must be visible to every shard that can receive a write).
_CONTROL_KINDS = (LEASE, PLAN)


@dataclass(frozen=True)
class RingSpec:
    """An immutable consistent-hash ring: which shard slots hold data.

    ``members`` are *global* indices into ``ShardedServer.shards`` --
    vnode positions hash the global index, so a shard that survives a
    rebalance keeps its ring positions and only the minimal
    consistent-hash fraction of blobs moves when members change.
    """

    members: tuple[int, ...]
    replicas: int

    def __post_init__(self):
        members = tuple(self.members)
        object.__setattr__(self, "members", members)
        if not members:
            raise ValueError("a ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate ring members")
        if not 1 <= self.replicas <= len(members):
            raise ValueError("need 1 <= replicas <= len(members)")

    @property
    def vnodes(self) -> tuple:
        """Sorted (position, shard index) virtual nodes, built lazily."""
        cached = self.__dict__.get("_vnodes")
        if cached is None:
            cached = tuple(sorted(
                (_ring_hash(f"shard-{i}/vnode-{v}"), i)
                for i in self.members for v in range(_VNODES)))
            object.__setattr__(self, "_vnodes", cached)
        return cached

    def targets(self, blob_id: BlobId) -> tuple[int, ...]:
        """The k distinct ring successors for one blob, in preference
        order (control blobs are placed by the server, not the ring)."""
        point = _ring_hash(f"{blob_id.inode}:{blob_id.selector}")
        ring, n = self.vnodes, len(self.vnodes)
        lo, hi = 0, n
        while lo < hi:  # bisect for the first vnode at/after the point
            mid = (lo + hi) // 2
            if ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        targets: list[int] = []
        i = lo
        while len(targets) < self.replicas:
            shard = ring[i % n][1]
            if shard not in targets:
                targets.append(shard)
            i += 1
        return tuple(targets)


class ShardOutageServer(OutageServer):
    """A whole-shard outage window: the "kill one shard" scenario.

    Plain :class:`OutageServer` semantics on one shard's backend, plus
    the shard index for reporting.  ``end_s=float("inf")`` models a
    shard that never comes back.
    """

    def __init__(self, inner: StorageServer, clock: SimClock,
                 shard_index: int, start_s: float = 0.0,
                 end_s: float = float("inf")):
        super().__init__(inner, clock, start_s, end_s,
                         name=f"shard{shard_index}-outage")
        self.shard_index = shard_index


@dataclass
class Shard:
    """One backend SSP slot: the raw store, an optional fault wrapper,
    and the per-shard resilient transport every data-plane call goes
    through."""

    index: int
    backend: StorageServer
    wrapped: StorageServer
    transport: ResilientTransport
    reads: int = 0  # reads this shard served (the read-share gauge)


@dataclass
class ShardRepairReport:
    """What one anti-entropy pass did (``repro shard-repair``)."""

    scanned: int = 0
    re_replicated: int = 0      # missing copies restored from the winner
    healed_divergent: int = 0   # suspect/divergent copies overwritten
    deletes_applied: int = 0    # pending tombstones finally applied
    dropped_misplaced: int = 0  # stray copies on shards outside placement
    migrated: int = 0           # copies dropped because a plan moved them
    unreachable: int = 0        # repairs skipped: target shard down
    #: "resumed" / "rolled_back" when the pass found an active plan.
    plan_action: str = ""
    #: blob ids still under-replicated after the pass (down shards).
    remaining: list = field(default_factory=list)

    @property
    def fully_replicated(self) -> bool:
        return not self.remaining

    def summary(self) -> str:
        state = ("fully replicated" if self.fully_replicated else
                 f"{len(self.remaining)} blob(s) still under-replicated")
        plan = (f"plan {self.plan_action}, " if self.plan_action else "")
        return (f"shard-repair: {plan}scanned {self.scanned} blobs, "
                f"re-replicated {self.re_replicated}, healed "
                f"{self.healed_divergent} divergent, applied "
                f"{self.deletes_applied} pending deletes, dropped "
                f"{self.dropped_misplaced} misplaced, migrated "
                f"{self.migrated}, "
                f"{self.unreachable} unreachable -> {state}")


class ShardedServer:
    """N-shard, k-replica storage router with the StorageServer API."""

    def __init__(self, shards: int = 4, replicas: int = 2,
                 policy: RetryPolicy | None = None,
                 clock: SimClock | None = None,
                 read_quorum: int = 1,
                 backends: Sequence[StorageServer] | None = None,
                 name: str = "sharded-ssp",
                 read_seed: int = 0):
        if backends is not None:
            backends = list(backends)
            shards = len(backends)
        if shards < 1:
            raise ValueError("need at least one shard")
        if not 1 <= replicas <= shards:
            raise ValueError("need 1 <= replicas <= shards")
        if not 1 <= read_quorum <= replicas:
            raise ValueError("need 1 <= read_quorum <= replicas")
        self.name = name
        self.read_quorum = read_quorum
        self.read_seed = read_seed
        self.clock = clock if clock is not None else SimClock()
        self._policy = policy or SHARD_POLICY
        #: logical op stats: one record per *client* op, matching what a
        #: single StorageServer would count (the per-shard backends
        #: carry the amplified replica traffic; see physical_requests).
        self.stats = ServerStats()
        self.shards: list[Shard] = []
        for i in range(shards):
            backend = (backends[i] if backends is not None
                       else StorageServer(name=f"{name}-{i}"))
            self.shards.append(Shard(
                index=i, backend=backend, wrapped=backend,
                transport=self._make_transport(i, backend)))
        #: the active placement ring (every attached shard at mount;
        #: ``add_shard`` attaches spares outside it, a rebalance plan
        #: brings them in).
        self.ring = RingSpec(tuple(range(shards)), replicas)
        #: the adopted rebalance plan (dual placement while not None).
        self.plan = None
        #: the ring a finished/rolled-back plan vacated -- stray copies
        #: on it are ``migrated``, not misplaced, when repair drops them.
        self._retired: RingSpec | None = None
        #: suspect copies: blob -> shard indices whose copy missed a
        #: mutation (or lost a quorum vote) and must not be served.
        self._suspect: dict[BlobId, set[int]] = {}
        #: pending deletes: blob -> shard indices that still hold bytes
        #: for a logically-deleted blob (tombstones so a returning shard
        #: cannot resurrect it through reads or anti-entropy).
        self._deleted: dict[BlobId, set[int]] = {}
        #: per-blob read attempt counters (drives the seeded rotation).
        self._read_attempts: dict[BlobId, int] = {}
        # shard.* counters (exported via shard_snapshot)
        self.failovers = 0          # reads served by a non-first replica
        self.suspect_serves = 0     # reads forced onto a suspect copy
        self.quorum_reads = 0       # reads that cross-checked copies
        self.divergent = 0          # divergence events detected
        self.ties = 0               # unresolvable value ties (see _vote)
        self.outvoted = 0           # minority copies flagged by quorum
        self.partial_writes = 0     # mutations that missed >= 1 replica
        self.failed_ops = 0         # ops with zero live replicas
        self.repairs = 0            # anti-entropy copies restored
        # shard.rebalance.* counters (driven by the Rebalancer)
        self.rebalance_moved = 0    # copies placed on the new ring
        self.rebalance_verified = 0  # new-ring copies verified
        self.rebalance_dropped = 0  # old-placement copies dropped
        self.dual_reads = 0         # reads served under dual placement
        self.dual_writes = 0        # mutations fanned to both rings

    @property
    def replicas(self) -> int:
        return self.ring.replicas

    # -- plumbing ------------------------------------------------------------

    def _make_transport(self, index: int,
                        inner: StorageServer) -> ResilientTransport:
        return ResilientTransport(inner, self._policy, clock=self.clock,
                                  name=f"shard{index}")

    def wrap_shard(self, index: int,
                   factory: Callable[[StorageServer], StorageServer]
                   ) -> StorageServer:
        """Interpose a fault wrapper under shard ``index``'s transport.

        ``factory`` receives the shard's raw backend and returns the
        wrapper (outage, flaky, tampering, rollback...).  The shard's
        transport is rebuilt over it, resetting breaker state, so
        adversarial campaigns can re-arm scenarios per cell.
        """
        shard = self.shards[index]
        shard.wrapped = factory(shard.backend)
        shard.transport = self._make_transport(index, shard.wrapped)
        return shard.wrapped

    def clear_wrappers(self) -> None:
        """Remove every fault wrapper (shards heal; breakers reset)."""
        for shard in self.shards:
            shard.wrapped = shard.backend
            shard.transport = self._make_transport(shard.index,
                                                   shard.backend)

    def outage(self, index: int, start_s: float = 0.0,
               end_s: float = float("inf")) -> ShardOutageServer:
        """Arm a :class:`ShardOutageServer` window on one shard."""
        return self.wrap_shard(
            index, lambda backend: ShardOutageServer(
                backend, self.clock, index, start_s, end_s))

    # -- topology ------------------------------------------------------------

    def add_shard(self, backend: StorageServer | None = None) -> int:
        """Attach a new backend slot *outside* the ring.

        The spare holds nothing and serves nothing until a rebalance
        plan brings it into placement; returns its global index.
        """
        index = len(self.shards)
        if backend is None:
            backend = StorageServer(name=f"{self.name}-{index}")
        self.shards.append(Shard(
            index=index, backend=backend, wrapped=backend,
            transport=self._make_transport(index, backend)))
        return index

    def set_ring(self, members: Sequence[int], replicas: int) -> None:
        """Swap the active ring (rebalance bookkeeping, not data moves)."""
        ring = RingSpec(tuple(members), replicas)
        for m in ring.members:
            if not 0 <= m < len(self.shards):
                raise ValueError(f"ring member {m} is not attached")
        if self.read_quorum > ring.replicas:
            raise ValueError("read_quorum would exceed the replica count")
        self.ring = ring

    def adopt_plan(self, plan) -> None:
        """Route placement through a rebalance plan (or None to drop).

        The plan object only needs ``old``/``new`` :class:`RingSpec`
        attributes and a ``flipped`` property -- the concrete class
        lives in :mod:`repro.storage.rebalance`, which imports from
        this module, not the other way around.
        """
        self.plan = plan

    def retire_plan(self, vacated: RingSpec | None = None) -> None:
        """Drop the adopted plan, remembering the ring it vacated."""
        self.plan = None
        if vacated is not None:
            self._retired = vacated

    def _rings(self) -> tuple[RingSpec, "RingSpec | None"]:
        """(authoritative ring, secondary ring or None).

        Pre-flip the old ring is authoritative and the new ring is the
        secondary; the flip inverts that; with no plan adopted there is
        no secondary.
        """
        plan = self.plan
        if plan is None:
            return self.ring, None
        if plan.flipped:
            return plan.new, plan.old
        return plan.old, plan.new

    def _control_members(self) -> tuple[int, ...]:
        """Shards holding control blobs (lease/plan): every ring member,
        and every member of *both* rings while a plan is active -- each
        shard that can receive a write must be able to fence locally."""
        primary, secondary = self._rings()
        members = set(primary.members)
        if secondary is not None:
            members.update(secondary.members)
        return tuple(sorted(members))

    def placement(self, blob_id: BlobId) -> tuple[int, ...]:
        """Replica shard indices for one blob, preference-ordered.

        Control blobs (lease/plan) land on **every** ring member: each
        shard then fences locally against its own copy and a read takes
        the max epoch across live copies, keeping the chain monotone
        through any outage.  While a rebalance plan is adopted the
        placement is the **union of both rings** (authoritative ring's
        targets first): reads can find a copy wherever the pipeline
        left it, and mutations fan out to both placements so neither
        ring can strand a newer version.
        """
        if blob_id.kind in _CONTROL_KINDS:
            return self._control_members()
        primary, secondary = self._rings()
        targets = list(primary.targets(blob_id))
        if secondary is not None:
            targets.extend(s for s in secondary.targets(blob_id)
                           if s not in targets)
        return tuple(targets)

    def _required_targets(self, blob_id: BlobId) -> tuple[int, ...]:
        """Placement a *healthy* store must satisfy (repair's goal).

        Only the authoritative ring's targets: secondary-ring copies
        under an active plan are the rebalancer's job, not replication
        gaps.
        """
        if blob_id.kind in _CONTROL_KINDS:
            return self._control_members()
        primary, _ = self._rings()
        return primary.targets(blob_id)

    def _is_suspect(self, blob_id: BlobId, shard: int) -> bool:
        return (shard in self._suspect.get(blob_id, ())
                or shard in self._deleted.get(blob_id, ()))

    def _mark_suspect(self, blob_id: BlobId, shard: int) -> None:
        self._suspect.setdefault(blob_id, set()).add(shard)

    def _clear_suspect(self, blob_id: BlobId, shard: int) -> None:
        marks = self._suspect.get(blob_id)
        if marks is not None:
            marks.discard(shard)
            if not marks:
                del self._suspect[blob_id]

    # -- reads ---------------------------------------------------------------

    def _read_order(self, blob_id: BlobId,
                    targets: Sequence[int]) -> list[int]:
        """Trusted replicas in serve order, rotated for load spread.

        Single-copy reads (``read_quorum == 1``) rotate their starting
        replica by a seeded deterministic hash of (blob, attempt), so a
        hot blob's traffic spreads near-uniformly over its replica set
        instead of hammering the preference-first shard.  Control blobs
        and quorum reads keep placement order: they consult multiple
        copies anyway, and a deterministic vote window keeps divergence
        detection reproducible.
        """
        order = [s for s in targets if not self._is_suspect(blob_id, s)]
        if (blob_id.kind in _CONTROL_KINDS or self.read_quorum > 1
                or len(order) < 2):
            return order
        attempt = self._read_attempts.get(blob_id, 0)
        self._read_attempts[blob_id] = attempt + 1
        start = _ring_hash(
            f"read:{blob_id}:{attempt}:{self.read_seed}") % len(order)
        return order[start:] + order[:start]

    def _collect(self, blob_id: BlobId, targets: Sequence[int],
                 want: int) -> tuple[dict[int, bytes | None], int]:
        """Fetch copies from up to ``want`` *trusted* live replicas.

        Returns ``(copies, down)``: ``copies`` maps shard index to
        payload (None = that replica answered "missing"), ``down``
        counts replicas that failed transiently.  Suspect copies are
        never consulted here.
        """
        copies: dict[int, bytes | None] = {}
        down = 0
        for shard_index in targets:
            if len(copies) >= want:
                break
            if self._is_suspect(blob_id, shard_index):
                continue
            try:
                copies[shard_index] = \
                    self.shards[shard_index].transport.get(blob_id)
            except BlobNotFound:
                copies[shard_index] = None
            except TransientStorageError:
                down += 1
        return copies, down

    def _vote(self, blob_id: BlobId, copies: dict[int, bytes | None],
              order: Sequence[int]) -> bytes | None:
        """Pick the winning copy and flag disagreeing copies suspect.

        Lease blobs win by fencing epoch (highest -- a lagging replica
        must never regress the chain).  Everything else wins by
        majority value, and the outvoted minority is flagged suspect
        and queued for repair.  A present copy always beats an absent
        one: an absent copy is a missed write, not evidence of deletion
        (deletes are gated by the tombstone ledger before this point).
        A strict value tie (possible only at even replication against
        an adversary -- honest missed writes are already in the suspect
        ledger) cannot be arbitrated by an untrusted router: it is
        counted ``divergent``/``ties``, *neither* side is marked
        suspect, the preference-first copy is served, and the client's
        own signature/freshness verification is the backstop (see
        docs/THREAT_MODEL.md).
        """
        values = list(copies.values())
        if len(set(values)) <= 1:
            return values[0] if values else None
        self.divergent += 1
        present = {s: v for s, v in copies.items() if v is not None}
        if blob_id.kind in _CONTROL_KINDS:
            winner = max(present.values(), key=fence_epoch)
        else:
            tally: dict[bytes, int] = {}
            for v in present.values():
                tally[v] = tally.get(v, 0) + 1
            best = max(tally.values())
            majority = {v for v, n in tally.items() if n == best}
            winner = next(present[s] for s in order
                          if present.get(s) in majority)
            if len(majority) > 1:
                self.ties += 1
                # Absent copies are still a missed write; flag those.
                for shard_index, value in copies.items():
                    if value is None:
                        self._mark_suspect(blob_id, shard_index)
                return winner
        for shard_index, value in copies.items():
            if value != winner:
                self.outvoted += 1
                self._mark_suspect(blob_id, shard_index)
        return winner

    def _read(self, blob_id: BlobId) -> bytes | None:
        """Winner bytes for one blob (None = missing everywhere)."""
        targets = self.placement(blob_id)
        order = self._read_order(blob_id, targets)
        # Control reads always consult every live copy: the max-epoch
        # rule is what keeps fencing monotone across shard outages.
        want = (len(order) if blob_id.kind in _CONTROL_KINDS
                else max(self.read_quorum, 1))
        if self.plan is not None and blob_id.kind not in _CONTROL_KINDS:
            self.dual_reads += 1
        copies, down = self._collect(blob_id, order, want)
        if len(set(copies.values())) > 1 or (
                copies and set(copies.values()) == {None}):
            # Disagreement, or every consulted replica says missing
            # (one replica's miss is under-replication, not authority):
            # widen to every remaining trusted replica so the vote runs
            # over the full replica set before anything is judged.
            rest = [s for s in order if s not in copies]
            if rest:
                more, more_down = self._collect(blob_id, rest, len(rest))
                down += more_down
                copies.update(more)
        winner = self._vote(blob_id, copies, order) if copies else None
        if len(copies) > 1:
            self.quorum_reads += 1
        if copies:
            # A None winner here is authoritative absence: the widen
            # step above consulted *every* live trusted replica, and a
            # replica that merely missed the write sits in the suspect
            # ledger (flagged at write time), not in this vote.  A down
            # shard therefore cannot be hiding the only good copy.
            if winner is not None and order and \
                    next(iter(copies)) != order[0]:
                self.failovers += 1
            if winner is not None:
                served = next((s for s, v in copies.items()
                               if v == winner), None)
                if served is not None:
                    self.shards[served].reads += 1
            return winner
        # No trusted replica reachable; as a last resort serve a
        # suspect copy (the client's own verification is the backstop)
        # rather than fail a read the data could still answer.
        for shard_index in [s for s in targets
                            if s in self._suspect.get(blob_id, set())]:
            try:
                payload = self.shards[shard_index].transport.get(blob_id)
            except BlobNotFound:
                return None
            except TransientStorageError:
                continue
            self.suspect_serves += 1
            return payload
        self.failed_ops += 1
        raise TransientStorageError(
            f"{self.name}: no live replica for get {blob_id} "
            f"(shards {targets})")

    def get(self, blob_id: BlobId) -> bytes:
        payload = self._read(blob_id)
        if payload is None:
            self.stats.record_miss()
            raise BlobNotFound(str(blob_id))
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def exists(self, blob_id: BlobId) -> bool:
        return self._read(blob_id) is not None

    # -- mutations -----------------------------------------------------------

    def _fan_out(self, op: str, blob_id: BlobId,
                 call: Callable[[ResilientTransport], None]
                 ) -> tuple[list[int], list[int]]:
        """Apply one mutation to every replica; succeed on >= 1 live.

        Returns ``(applied, missed)`` shard indices.  Missed replicas
        hold a stale copy now -- the caller flags them suspect and
        anti-entropy restores them.  Terminal storage answers (CAS
        conflict, stale epoch) propagate immediately: they are protocol
        outcomes, not shard failures; replicas that already applied are
        flagged suspect so the skew cannot be served.
        """
        targets = self.placement(blob_id)
        applied: list[int] = []
        missed: list[int] = []
        for shard_index in targets:
            try:
                call(self.shards[shard_index].transport)
                applied.append(shard_index)
            except TransientStorageError:
                missed.append(shard_index)
            except (CasConflictError, StaleEpochError):
                for done in applied:
                    self._mark_suspect(blob_id, done)
                raise
        if not applied:
            self.failed_ops += 1
            raise TransientStorageError(
                f"{self.name}: no live replica for {op} {blob_id} "
                f"(shards {targets})")
        if missed:
            self.partial_writes += 1
        return applied, missed

    def _after_write(self, blob_id: BlobId, applied: Sequence[int],
                     missed: Sequence[int]) -> None:
        if self.plan is not None and blob_id.kind not in _CONTROL_KINDS:
            self.dual_writes += 1
        self._deleted.pop(blob_id, None)
        for shard_index in applied:
            self._clear_suspect(blob_id, shard_index)
        for shard_index in missed:
            self._mark_suspect(blob_id, shard_index)

    def _after_delete(self, blob_id: BlobId,
                      missed: Sequence[int]) -> None:
        if self.plan is not None and blob_id.kind not in _CONTROL_KINDS:
            self.dual_writes += 1
        self._suspect.pop(blob_id, None)
        still = {s for s in missed
                 if self.shards[s].backend.exists(blob_id)}
        if still:
            self._deleted[blob_id] = still
        else:
            self._deleted.pop(blob_id, None)

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        applied, missed = self._fan_out(
            "put", blob_id, lambda t: t.put(blob_id, payload))
        self._after_write(blob_id, applied, missed)
        self.stats.record_put(blob_id.kind, len(payload))

    def delete(self, blob_id: BlobId) -> None:
        _, missed = self._fan_out(
            "delete", blob_id, lambda t: t.delete(blob_id))
        self._after_delete(blob_id, missed)
        self.stats.record_delete(blob_id.kind, 0)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        """CAS against the *winner* copy, then write through everywhere.

        The compare runs against the same copy a read would serve (max
        epoch for lease blobs), so a lagging replica can neither win a
        CAS with stale bytes nor block a legitimate one; the
        write-through then heals every live copy to the new value.  The
        simulated testbed is single-threaded, so resolve-then-write is
        atomic; a real deployment would run the same sequence under a
        per-blob lock at the router.
        """
        current = self._read(blob_id)
        if current != expected:
            raise CasConflictError(f"cas conflict on {blob_id}",
                                   current=current)
        applied, missed = self._fan_out(
            "put_if", blob_id, lambda t: t.put(blob_id, payload))
        self._after_write(blob_id, applied, missed)
        self.stats.record_put(blob_id.kind, len(payload))

    def _live_fence_epoch(self, fence: BlobId) -> int:
        """Highest fencing epoch across live replicas of ``fence``."""
        epochs = [0]
        for shard_index in self.placement(fence):
            try:
                epochs.append(fence_epoch(
                    self.shards[shard_index].transport.get(fence)))
            except BlobNotFound:
                epochs.append(0)
            except TransientStorageError:
                continue
        return max(epochs)

    def _check_fence(self, fence: BlobId, epoch: int) -> None:
        current = self._live_fence_epoch(fence)
        if epoch < current:
            raise StaleEpochError(
                f"fenced write at epoch {epoch} rejected: "
                f"{fence} is at epoch {current}",
                current_epoch=current)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        """Fence on the max live epoch, then every replica re-checks.

        The pre-check closes the zombie gap a lagging replica would
        open (its local fence copy fails open at a stale epoch); the
        per-replica check keeps each shard independently safe.
        """
        self._check_fence(fence, epoch)
        applied, missed = self._fan_out(
            "put_fenced", blob_id,
            lambda t: t.put_fenced(blob_id, payload, fence, epoch))
        self._after_write(blob_id, applied, missed)
        self.stats.record_put(blob_id.kind, len(payload))

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._check_fence(fence, epoch)
        _, missed = self._fan_out(
            "delete_fenced", blob_id,
            lambda t: t.delete_fenced(blob_id, fence, epoch))
        self._after_delete(blob_id, missed)
        self.stats.record_delete(blob_id.kind, 0)

    # -- batched sub-ops: per-shard scatter-gather ---------------------------

    _SCATTER_MUTATIONS = ("put", "delete", "put_fenced", "delete_fenced")

    def batch(self, ops: Sequence[BatchOp]) -> list[BatchReply]:
        """Fan one OP_BATCH frame out as per-shard sub-frames.

        The frame is split at ``put_if`` barriers (a CAS must resolve
        against the quorum winner *in order*, via :meth:`put_if`); each
        barrier-free segment is scattered in one round: every mutation
        sub-op is appended to each of its replica shards' sub-frames,
        every plain read rides its first trusted replica's sub-frame,
        and lease/quorum reads resolve through the fan-out read path.
        Per-shard sub-frames preserve the caller's sub-op order and
        ship through the shard's own :meth:`ResilientTransport.batch`
        (partial retry per shard); replies merge back by global index
        under the single-server contract: ok / missing / conflict are
        per-sub-op terminal, the first fenced or hard error stops the
        frame, and the tail reads ``unattempted``.

        Two sharded-specific wrinkles, both documented in
        docs/ROBUSTNESS.md: a fence rejection from *any* replica
        overrides an accept from a lagging one (replicas that already
        applied are flagged suspect), and because a segment scatters
        before it merges, sub-ops *after* a stopping error may already
        have applied on their shards -- they are idempotent and the
        tail is safe to re-send verbatim, which is all the retry layer
        above relies on.
        """
        ops = list(ops)
        merged: list[BatchReply] = []
        i = 0
        stopped = False
        while i < len(ops):
            if stopped:
                merged.append(BatchReply("unattempted"))
                i += 1
                continue
            if ops[i].kind == "put_if":
                reply = self._single_subop(ops[i])
                merged.append(reply)
                if reply.status in ("fenced", "error"):
                    stopped = True
                i += 1
                continue
            j = i
            while j < len(ops) and ops[j].kind != "put_if":
                j += 1
            segment_replies = self._scatter_segment(ops[i:j])
            merged.extend(segment_replies)
            if any(r.status in ("fenced", "error")
                   for r in segment_replies):
                stopped = True
            i = j
        return merged

    def _scatter_segment(self,
                         segment: Sequence[BatchOp]) -> list[BatchReply]:
        """One barrier-free scatter-gather round over ``segment``."""
        # Fenced pre-check (same zombie gap as the single-op path): cut
        # the segment at the first sub-op whose fence already advanced.
        cut = len(segment)
        fenced_reply: BatchReply | None = None
        checked: dict[tuple[BlobId, int], BatchReply | None] = {}
        for idx, op in enumerate(segment):
            if op.kind not in ("put_fenced", "delete_fenced"):
                continue
            key = (op.fence, op.epoch or 0)
            if key not in checked:
                try:
                    self._check_fence(op.fence, op.epoch or 0)
                    checked[key] = None
                except StaleEpochError as exc:
                    checked[key] = BatchReply(
                        "fenced", epoch=exc.current_epoch)
            if checked[key] is not None:
                cut, fenced_reply = idx, checked[key]
                break

        frames: dict[int, list[tuple[int, BatchOp]]] = {}
        singles: set[int] = set()
        for idx, op in enumerate(segment[:cut]):
            if op.kind in self._SCATTER_MUTATIONS:
                for shard_index in self.placement(op.blob_id):
                    frames.setdefault(shard_index, []).append((idx, op))
            else:  # get / exists
                order = self._read_order(op.blob_id,
                                         self.placement(op.blob_id))
                if (order and op.blob_id.kind not in _CONTROL_KINDS
                        and self.read_quorum == 1):
                    frames.setdefault(order[0], []).append((idx, op))
                else:
                    singles.add(idx)

        by_index: dict[int, dict[int, BatchReply]] = {}
        for shard_index, frame in frames.items():
            transport = self.shards[shard_index].transport
            try:
                shard_replies = transport.batch([op for _, op in frame])
            except TransientStorageError as exc:
                shard_replies = [BatchReply("error", message=str(exc),
                                            transient=True)] * len(frame)
            for (idx, _op), reply in zip(frame, shard_replies):
                by_index.setdefault(idx, {})[shard_index] = reply

        replies: list[BatchReply] = []
        stopped = False
        for idx, op in enumerate(segment):
            if idx == cut and fenced_reply is not None:
                replies.append(fenced_reply)
                stopped = True
                continue
            if stopped or idx > cut:
                replies.append(BatchReply("unattempted"))
                continue
            reply = self._merge_subop(op, by_index.get(idx, {}),
                                      idx in singles)
            replies.append(reply)
            if reply.status in ("fenced", "error"):
                stopped = True
        return replies

    def _merge_subop(self, op: BatchOp,
                     replies: dict[int, BatchReply],
                     resolve_single: bool) -> BatchReply:
        """Merge one sub-op's per-shard replies (or run it single-op)."""
        if op.kind in ("get", "exists"):
            if resolve_single or not replies:
                return self._single_subop(op)
            reply = next(iter(replies.values()))
            if reply.status == "ok":
                if self.plan is not None and \
                        op.blob_id.kind not in _CONTROL_KINDS:
                    self.dual_reads += 1
                if op.kind == "get":
                    self.shards[next(iter(replies))].reads += 1
                    self.stats.record_get(op.blob_id.kind,
                                          len(reply.payload or b""))
                    return reply
                if reply.payload == b"\x01":
                    return reply
                # one replica's "absent" is not authoritative
                return self._single_subop(op)
            # failed / missing / unattempted primary: the single-op
            # path fans out across the remaining replicas.
            return self._single_subop(op)

        # replicated mutation: ok once any replica applied it, but a
        # fence rejection from any replica overrides (max-epoch rule)
        targets = self.placement(op.blob_id)
        applied = [s for s, r in replies.items() if r.status == "ok"]
        fenced = [r for r in replies.values() if r.status == "fenced"]
        hard = [r for r in replies.values()
                if r.status == "error" and not r.transient]
        missed = [s for s in targets if s not in applied]
        if fenced:
            for shard_index in applied:
                self._mark_suspect(op.blob_id, shard_index)
            return max(fenced, key=lambda r: r.epoch or 0)
        if hard and not applied:
            return hard[0]
        if not applied:
            self.failed_ops += 1
            return BatchReply(
                "error", transient=True,
                message=(f"{self.name}: no live replica for batched "
                         f"{op.kind} {op.blob_id}"))
        if missed:
            self.partial_writes += 1
        if op.kind in ("put", "put_fenced"):
            self._after_write(op.blob_id, applied, missed)
            self.stats.record_put(op.blob_id.kind,
                                  len(op.payload or b""))
        else:  # delete / delete_fenced
            self._after_delete(op.blob_id, missed)
            self.stats.record_delete(op.blob_id.kind, 0)
        return BatchReply("ok")

    def _single_subop(self, op: BatchOp) -> BatchReply:
        """Resolve one sub-op through the quorum single-op methods."""
        return apply_batch(self, [op])[0]

    # -- many-op conveniences (same contract as StorageServer) ---------------

    get_many = StorageServer.get_many
    put_many = StorageServer.put_many
    delete_many = StorageServer.delete_many

    # -- anti-entropy --------------------------------------------------------

    def census(self) -> dict[BlobId, set[int]]:
        """Union census: every stored blob id -> shards holding a copy.

        The same union fsck's orphan scan sees through ``raw_blobs``;
        anti-entropy diffs it against the placement map.
        """
        seen: dict[BlobId, set[int]] = {}
        for shard in self.shards:
            for blob_id in shard.backend.raw_blobs():
                seen.setdefault(blob_id, set()).add(shard.index)
        return seen

    def under_replicated(self) -> dict[BlobId, set[int]]:
        """Blob -> shard indices missing (or distrusted for) a copy.

        Judged against :meth:`_required_targets` (the authoritative
        ring): secondary-ring gaps under an active plan are pipeline
        work in flight, not replication holes.
        """
        out: dict[BlobId, set[int]] = {}
        for blob_id, holders in self.census().items():
            if blob_id in self._deleted:
                continue
            targets = set(self._required_targets(blob_id))
            trusted = {s for s in (holders & targets)
                       if not self._is_suspect(blob_id, s)}
            gaps = targets - trusted
            if gaps:
                out[blob_id] = gaps
        for blob_id, shards in self._deleted.items():
            out.setdefault(blob_id, set()).update(shards)
        return out

    def _was_migrated(self, blob_id: BlobId, shard_index: int) -> bool:
        """Did a rebalance plan (not corruption) leave this copy here?"""
        retired = self._retired
        if retired is None:
            return False
        if blob_id.kind in _CONTROL_KINDS:
            return shard_index in retired.members
        return shard_index in retired.targets(blob_id)

    def repair(self) -> ShardRepairReport:
        """One anti-entropy pass: restore placement everywhere reachable.

        An adopted rebalance plan is resolved first -- resumed to done
        if it already flipped (the new ring is authoritative, so only
        forward is safe), rolled back otherwise (the old ring never
        stopped being authoritative, so abandoning the copies is always
        safe); either way the census pass below runs against a single
        authoritative ring.  Then pending deletes apply (so a returned
        shard cannot resurrect deleted blobs), every under-placed blob
        is re-replicated from its winner copy, divergent/suspect copies
        are overwritten, and copies on shards outside the placement are
        dropped -- classified ``migrated`` when the vacated ring placed
        them there, ``dropped_misplaced`` otherwise.  Repairs go
        through each shard's transport, so a shard that is still down
        stays pending -- run the pass again once it returns.
        """
        report = ShardRepairReport()
        if self.plan is not None:
            from .rebalance import resolve_plan
            report.plan_action = resolve_plan(self)
        for blob_id, shards in list(self._deleted.items()):
            remaining: set[int] = set()
            for shard_index in sorted(shards):
                try:
                    self.shards[shard_index].transport.delete(blob_id)
                    report.deletes_applied += 1
                except TransientStorageError:
                    remaining.add(shard_index)
                    report.unreachable += 1
            if remaining:
                self._deleted[blob_id] = remaining
                report.remaining.append(blob_id)
            else:
                del self._deleted[blob_id]

        census = self.census()
        for blob_id in sorted(set(census) | set(self._suspect), key=str):
            if blob_id in self._deleted:
                continue
            holders = census.get(blob_id, set())
            targets = self._required_targets(blob_id)
            report.scanned += 1
            winner = self._winner_copy(blob_id, holders, targets,
                                       strict=True)
            if winner is None:
                if holders:  # unresolvable tie: surface, never guess
                    report.remaining.append(blob_id)
                continue
            healed_all = True
            for shard_index in targets:
                have = (self.shards[shard_index].backend.raw_blobs()
                        .get(blob_id) if shard_index in holders else None)
                if have == winner and \
                        not self._is_suspect(blob_id, shard_index):
                    continue
                try:
                    self.shards[shard_index].transport.put(blob_id,
                                                           winner)
                except TransientStorageError:
                    report.unreachable += 1
                    healed_all = False
                    continue
                self._clear_suspect(blob_id, shard_index)
                self.repairs += 1
                if have is None:
                    report.re_replicated += 1
                else:
                    report.healed_divergent += 1
            for shard_index in sorted(holders - set(targets)):
                try:
                    self.shards[shard_index].transport.delete(blob_id)
                except TransientStorageError:
                    report.unreachable += 1
                    healed_all = False
                    continue
                if self._was_migrated(blob_id, shard_index):
                    report.migrated += 1
                else:
                    report.dropped_misplaced += 1
            if not healed_all:
                report.remaining.append(blob_id)
        return report

    def _winner_copy(self, blob_id: BlobId, holders: set[int],
                     targets: Sequence[int],
                     strict: bool = False) -> bytes | None:
        """The copy anti-entropy replicates: same rule reads use.

        With ``strict=True`` (the repair path) an unresolvable value
        tie among trusted copies returns None -- repair must never
        overwrite one side of a 1-1 split with the other; the tie is
        surfaced instead (see :meth:`repair`).  With ``strict=False``
        (the logical union view) the preference-first copy is returned
        so audits see a deterministic store.
        """
        trusted: dict[int, bytes] = {}
        all_copies: dict[int, bytes] = {}
        for shard_index in sorted(holders):
            raw = self.shards[shard_index].backend.raw_blobs()
            if blob_id not in raw:
                continue
            all_copies[shard_index] = raw[blob_id]
            if not self._is_suspect(blob_id, shard_index):
                trusted[shard_index] = raw[blob_id]
        copies = trusted or all_copies
        if not copies:
            return None
        if len(set(copies.values())) == 1:
            return next(iter(copies.values()))
        if blob_id.kind in _CONTROL_KINDS:
            return max(copies.values(), key=fence_epoch)
        tally: dict[bytes, int] = {}
        for v in copies.values():
            tally[v] = tally.get(v, 0) + 1
        best = max(tally.values())
        majority = {v for v, n in tally.items() if n == best}
        if strict and len(majority) > 1:
            return None
        order = [s for s in targets if s in copies] + sorted(
            s for s in copies if s not in targets)
        return next(copies[s] for s in order if copies[s] in majority)

    # -- capacity / audit helpers (deduplicated union view) ------------------

    def _union(self) -> dict[BlobId, bytes]:
        out: dict[BlobId, bytes] = {}
        for blob_id, holders in self.census().items():
            # Plan blobs are router control state, not volume data: the
            # logical store an audit (or a snapshot/restore) sees is
            # byte-identical to an unsharded run with no plan at all.
            if blob_id.kind == PLAN or blob_id in self._deleted:
                continue
            winner = self._winner_copy(blob_id, holders,
                                       self.placement(blob_id))
            if winner is not None:
                out[blob_id] = winner
        return out

    def list_kind(self, kind: str) -> Iterator[BlobId]:
        return (bid for bid in self._union() if bid.kind == kind)

    def blob_count(self) -> int:
        """Logical (deduplicated) blob count across all shards."""
        return len(self._union())

    def stored_bytes(self, kind: str | None = None) -> int:
        """Logical stored bytes (one replica's worth per blob)."""
        return sum(len(payload) for bid, payload in self._union().items()
                   if kind is None or bid.kind == kind)

    def physical_bytes(self) -> int:
        """Actual bytes held across every shard (with replication)."""
        return sum(shard.backend.stored_bytes()
                   for shard in self.shards)

    def physical_requests(self) -> int:
        """Backend requests actually served across every shard."""
        return sum(shard.backend.stats.puts + shard.backend.stats.gets
                   + shard.backend.stats.deletes
                   for shard in self.shards)

    def raw_blobs(self) -> dict[BlobId, bytes]:
        """The logical store a single-SSP audit would see (winners)."""
        return self._union()

    def snapshot_blobs(self) -> dict[BlobId, bytes]:
        return self._union()

    def restore_blobs(self, snapshot: dict[BlobId, bytes]) -> None:
        """Reset every shard to a prior logical snapshot, re-placed.

        Bypasses wrappers and transports (this is harness surgery, not
        data-plane traffic), clears the suspicion/tombstone ledgers and
        any adopted rebalance plan -- a restored store is healthy by
        construction, placed on the *current* ring -- and rebuilds the
        per-shard transports so breaker state resets with the data.
        Armed fault wrappers stay armed (campaigns re-arm per cell via
        :meth:`wrap_shard` anyway).
        """
        self.plan = None
        self._retired = None
        self._read_attempts.clear()
        per_shard: list[dict[BlobId, bytes]] = [{} for _ in self.shards]
        for blob_id, payload in snapshot.items():
            for shard_index in self.placement(blob_id):
                per_shard[shard_index][blob_id] = bytes(payload)
        for shard, blobs in zip(self.shards, per_shard):
            shard.backend.restore_blobs(blobs)
        self._suspect.clear()
        self._deleted.clear()
        for shard in self.shards:
            shard.transport = self._make_transport(shard.index,
                                                   shard.wrapped)

    # -- observability -------------------------------------------------------

    def shard_snapshot(self) -> dict[str, float]:
        """``shard.*`` metrics source (counters + per-shard gauges)."""
        out: dict[str, float] = {
            "shards": float(len(self.shards)),
            "replicas": float(self.replicas),
            "reads.failover": float(self.failovers),
            "reads.quorum": float(self.quorum_reads),
            "reads.suspect_served": float(self.suspect_serves),
            "divergent": float(self.divergent),
            "ties": float(self.ties),
            "outvoted": float(self.outvoted),
            "writes.partial": float(self.partial_writes),
            "failed_ops": float(self.failed_ops),
            "under_replicated": float(len(self._suspect)),
            "pending_deletes": float(len(self._deleted)),
            "repairs": float(self.repairs),
            "rebalance.active": float(self.plan is not None),
            "rebalance.plan_epoch": float(
                self.plan.epoch if self.plan is not None else 0),
            "rebalance.plan_rank": float(
                self.plan.rank if self.plan is not None else 0),
            "rebalance.moved": float(self.rebalance_moved),
            "rebalance.verified": float(self.rebalance_verified),
            "rebalance.dropped": float(self.rebalance_dropped),
            "rebalance.dual_reads": float(self.dual_reads),
            "rebalance.dual_writes": float(self.dual_writes),
        }
        total_reads = sum(shard.reads for shard in self.shards)
        for shard in self.shards:
            p = str(shard.index)
            out[f"{p}.breaker.state"] = float(
                _BREAKER_GAUGE[shard.transport.breaker_state])
            out[f"{p}.attempts"] = float(shard.transport.attempts)
            out[f"{p}.failed_attempts"] = float(
                shard.transport.failed_attempts)
            out[f"{p}.blobs"] = float(shard.backend.blob_count())
            out[f"{p}.bytes"] = float(shard.backend.stored_bytes())
            out[f"{p}.reads"] = float(shard.reads)
            out[f"{p}.read_share"] = (shard.reads / total_reads
                                      if total_reads else 0.0)
        return out
