"""The SSP data-serving tool over real TCP sockets (paper section IV).

The paper's second component is "the SSP component for serving data from
the remote site", which its prototype reaches over TCP/IP.  This module
provides exactly that: a threaded socket server exposing any
:class:`~repro.storage.server.StorageServer` (including the fault
variants), and a client-side proxy implementing the same put/get/delete
interface so a :class:`~repro.fs.client.SharoesFilesystem` can mount a
volume whose blobs genuinely cross a network boundary.

Wire format (all integers big-endian):

    request  := u32 length | u8 opcode | fields
    response := u32 length | u8 status | payload

    PUT        op=1: blob-id, payload      -> status OK
    GET        op=2: blob-id               -> status OK + payload | MISSING
    DELETE     op=3: blob-id               -> status OK
    EXISTS     op=4: blob-id               -> status OK + 1 byte (0/1)
    PUT_IF     op=5: blob-id, expected*, payload
                 -> status OK | CONFLICT + current*
    PUT_FENCED op=6: blob-id, fence-id, u64 epoch, payload
                 -> status OK | FENCED + u64 current epoch
    DEL_FENCED op=7: blob-id, fence-id, u64 epoch
                 -> status OK | FENCED + u64 current epoch
    BATCH      op=8: u32 count | count x (u8 sub-opcode, u32 body-len,
                 single-op body)
                 -> status OK + u32 count | count x (u8 sub-status,
                 u32 payload-len, single-op payload)

(``*`` marks a presence-prefixed field: one flag byte, 0 = absent blob,
1 = the remaining bytes are the value -- CAS must distinguish "expect
absent" from "expect empty".)

A batch frame is validated *in full* before any sub-op touches the
store: a truncated sub-op, a zero or oversize count, a nested batch, or
an unknown sub-opcode earns a top-level ERROR with nothing applied.
Sub-replies reuse the single-op payload encodings; sub-status
UNATTEMPTED(5) marks the tail after the batch stopped at a failed or
fenced sub-op.  An ERROR sub-reply payload is one transient-flag byte
followed by the message.

**Trace context** (optional, backward compatible): setting the top bit
of an opcode byte (top-level *or* batch sub-op) prefixes the body with a
16-byte correlation block -- ``u64 trace_id | u64 parent_span_id`` --
which the server installs around dispatch so a
:class:`~repro.obs.wiretrace.TracedServer` backend can parent its spans
under the requesting client span.  Frames without the flag are
byte-identical to the pre-tracing protocol.

Blob ids travel as their string form (``kind/inode/selector``).  The
server performs no computation on payloads -- it cannot: they are
ciphertext.  Simulated benchmark costs remain the job of the cost model;
this layer exists to demonstrate the deployment shape, and the test
suite runs a real loopback server.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading

from ..errors import (BlobNotFound, CasConflictError, StaleEpochError,
                      StorageError, TransientStorageError)
from .blobs import BlobId
from .server import BatchOp, BatchReply, StorageServer

OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_EXISTS = 4
OP_PUT_IF = 5
OP_PUT_FENCED = 6
OP_DELETE_FENCED = 7
OP_BATCH = 8

#: Top bit of any opcode byte: the body starts with a trace-context
#: block (u64 trace_id | u64 parent_span_id) before the normal fields.
TRACE_FLAG = 0x80
_TRACE_CTX_BYTES = 16

STATUS_OK = 0
STATUS_MISSING = 1
STATUS_ERROR = 2
STATUS_CONFLICT = 3
STATUS_FENCED = 4
#: Sub-reply only: the batch stopped before reaching this sub-op.
STATUS_UNATTEMPTED = 5

#: Hard cap on sub-ops per OP_BATCH frame (anti-amplification).
MAX_BATCH_OPS = 1024

_KIND_TO_OPCODE = {
    "put": OP_PUT, "get": OP_GET, "delete": OP_DELETE,
    "exists": OP_EXISTS, "put_if": OP_PUT_IF,
    "put_fenced": OP_PUT_FENCED, "delete_fenced": OP_DELETE_FENCED,
}
_OPCODE_TO_KIND = {v: k for k, v in _KIND_TO_OPCODE.items()}

_STATUS_TO_CODE = {
    "ok": STATUS_OK, "missing": STATUS_MISSING, "error": STATUS_ERROR,
    "conflict": STATUS_CONFLICT, "fenced": STATUS_FENCED,
    "unattempted": STATUS_UNATTEMPTED,
}
_CODE_TO_STATUS = {v: k for k, v in _STATUS_TO_CODE.items()}


def _pack_presence(value: bytes | None) -> bytes:
    """One flag byte + payload: None (absent blob) vs b'' are distinct."""
    return b"\x00" if value is None else b"\x01" + value


def _unpack_presence(raw: bytes) -> bytes | None:
    if not raw:
        raise StorageError("empty presence-prefixed field")
    if raw[0] == 0:
        if len(raw) != 1:
            raise StorageError("malformed absent-value field")
        return None
    return raw[1:]

_MAX_MESSAGE = 64 * 1024 * 1024


def _pack_fields(*fields: bytes) -> bytes:
    out = bytearray()
    for field in fields:
        out += struct.pack(">I", len(field))
        out += field
    return bytes(out)


def _unpack_fields(raw: bytes, count: int) -> list[bytes]:
    fields = []
    offset = 0
    for _ in range(count):
        if offset + 4 > len(raw):
            raise StorageError("truncated wire message")
        (length,) = struct.unpack_from(">I", raw, offset)
        offset += 4
        if offset + length > len(raw):
            raise StorageError("truncated wire field")
        fields.append(raw[offset:offset + length])
        offset += length
    return fields


def _parse_epoch(raw: bytes) -> int:
    if len(raw) != 8:
        raise StorageError(f"malformed epoch field ({len(raw)} bytes)")
    return struct.unpack(">Q", raw)[0]


def _parse_blob_id(raw: bytes) -> BlobId:
    try:
        kind, inode, selector = raw.decode("utf-8").split("/", 2)
        return BlobId(kind=kind, inode=int(inode), selector=selector)
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"malformed blob id on wire: {raw!r}") from exc


# -- trace-context codec ------------------------------------------------------

def encode_trace_context(ctx) -> bytes:
    """16-byte correlation block; parent id 0 encodes "no parent"."""
    return struct.pack(">QQ", ctx.trace_id, ctx.parent_span_id or 0)


def decode_trace_context(body: bytes):
    """Split a flagged body into (TraceContext, remaining fields)."""
    if len(body) < _TRACE_CTX_BYTES:
        raise StorageError("truncated trace-context block")
    trace_id, parent = struct.unpack_from(">QQ", body, 0)
    from ..obs.wiretrace import TraceContext
    return (TraceContext(trace_id, parent or None),
            body[_TRACE_CTX_BYTES:])


# -- OP_BATCH codec -----------------------------------------------------------

def _encode_sub_body(op: BatchOp) -> bytes:
    """A sub-op body is byte-identical to the single-op request body."""
    bid = str(op.blob_id).encode()
    if op.kind == "put":
        return _pack_fields(bid, op.payload or b"")
    if op.kind in ("get", "delete", "exists"):
        return _pack_fields(bid)
    if op.kind == "put_if":
        return _pack_fields(bid, _pack_presence(op.expected),
                            op.payload or b"")
    if op.kind == "put_fenced":
        return _pack_fields(bid, str(op.fence).encode(),
                            struct.pack(">Q", op.epoch or 0),
                            op.payload or b"")
    if op.kind == "delete_fenced":
        return _pack_fields(bid, str(op.fence).encode(),
                            struct.pack(">Q", op.epoch or 0))
    raise StorageError(f"unknown batch sub-op kind {op.kind!r}")


def _decode_sub_body(opcode: int, body: bytes) -> BatchOp:
    ctx = None
    if opcode & TRACE_FLAG:
        if not OP_PUT <= opcode & (TRACE_FLAG - 1) < OP_BATCH:
            raise StorageError(f"unknown batch sub-opcode {opcode}")
        opcode &= TRACE_FLAG - 1
        ctx, body = decode_trace_context(body)
    op = _decode_sub_fields(opcode, body)
    if ctx is not None:
        import dataclasses
        op = dataclasses.replace(op, ctx=ctx)
    return op


def _decode_sub_fields(opcode: int, body: bytes) -> BatchOp:
    kind = _OPCODE_TO_KIND.get(opcode)
    if kind is None:
        raise StorageError(f"unknown batch sub-opcode {opcode}")
    if kind == "put":
        blob_raw, payload = _unpack_fields(body, 2)
        return BatchOp.put(_parse_blob_id(blob_raw), payload)
    if kind == "get":
        (blob_raw,) = _unpack_fields(body, 1)
        return BatchOp.get(_parse_blob_id(blob_raw))
    if kind == "delete":
        (blob_raw,) = _unpack_fields(body, 1)
        return BatchOp.delete(_parse_blob_id(blob_raw))
    if kind == "exists":
        (blob_raw,) = _unpack_fields(body, 1)
        return BatchOp.exists(_parse_blob_id(blob_raw))
    if kind == "put_if":
        blob_raw, expected_raw, payload = _unpack_fields(body, 3)
        return BatchOp.put_if(_parse_blob_id(blob_raw), payload,
                              _unpack_presence(expected_raw))
    if kind == "put_fenced":
        blob_raw, fence_raw, epoch_raw, payload = _unpack_fields(body, 4)
        return BatchOp.put_fenced(_parse_blob_id(blob_raw), payload,
                                  _parse_blob_id(fence_raw),
                                  _parse_epoch(epoch_raw))
    blob_raw, fence_raw, epoch_raw = _unpack_fields(body, 3)
    return BatchOp.delete_fenced(_parse_blob_id(blob_raw),
                                 _parse_blob_id(fence_raw),
                                 _parse_epoch(epoch_raw))


def _encode_batch_request(ops) -> bytes:
    out = bytearray(struct.pack(">I", len(ops)))
    for op in ops:
        body = _encode_sub_body(op)
        opcode = _KIND_TO_OPCODE[op.kind]
        ctx = getattr(op, "ctx", None)
        if ctx is not None:
            opcode |= TRACE_FLAG
            body = encode_trace_context(ctx) + body
        out += bytes([opcode])
        out += struct.pack(">I", len(body))
        out += body
    return bytes(out)


def _decode_batch_request(body: bytes) -> list[BatchOp]:
    """Strictly parse an OP_BATCH body; any defect rejects the frame whole.

    Validation happens *before* application so a malformed frame can
    never half-apply: zero or oversize counts, truncated sub-ops,
    trailing garbage, nested batches, and unknown sub-opcodes all raise.
    """
    if len(body) < 4:
        raise StorageError("batch frame missing count")
    (count,) = struct.unpack_from(">I", body, 0)
    if count == 0:
        raise StorageError("batch frame with zero sub-ops")
    if count > MAX_BATCH_OPS:
        raise StorageError(
            f"batch count {count} exceeds limit {MAX_BATCH_OPS}")
    ops: list[BatchOp] = []
    offset = 4
    for _ in range(count):
        if offset + 5 > len(body):
            raise StorageError("truncated batch sub-op header")
        opcode = body[offset]
        (length,) = struct.unpack_from(">I", body, offset + 1)
        offset += 5
        if offset + length > len(body):
            raise StorageError("truncated batch sub-op body")
        ops.append(_decode_sub_body(opcode, body[offset:offset + length]))
        offset += length
    if offset != len(body):
        raise StorageError("trailing garbage after batch sub-ops")
    return ops


def _encode_sub_reply(reply: BatchReply) -> bytes:
    if reply.status == "ok":
        payload = reply.payload or b""
    elif reply.status == "conflict":
        payload = _pack_presence(reply.payload)
    elif reply.status == "fenced":
        payload = struct.pack(">Q", reply.epoch or 0)
    elif reply.status == "error":
        payload = (bytes([1 if reply.transient else 0])
                   + reply.message.encode())
    else:  # missing / unattempted
        payload = b""
    return (bytes([_STATUS_TO_CODE[reply.status]])
            + struct.pack(">I", len(payload)) + payload)


def _encode_batch_reply(replies) -> bytes:
    out = bytearray(struct.pack(">I", len(replies)))
    for reply in replies:
        out += _encode_sub_reply(reply)
    return bytes(out)


def _decode_batch_reply(payload: bytes, expected: int) -> list[BatchReply]:
    """Client-side strict parse of a batch reply (defects never crash)."""
    if len(payload) < 4:
        raise StorageError("batch reply missing count")
    (count,) = struct.unpack_from(">I", payload, 0)
    if count != expected:
        raise StorageError(
            f"batch reply count {count} != request count {expected}")
    replies: list[BatchReply] = []
    offset = 4
    for _ in range(count):
        if offset + 5 > len(payload):
            raise StorageError("truncated batch sub-reply header")
        code = payload[offset]
        status = _CODE_TO_STATUS.get(code)
        if status is None:
            raise StorageError(f"unknown batch sub-status {code}")
        (length,) = struct.unpack_from(">I", payload, offset + 1)
        offset += 5
        if offset + length > len(payload):
            raise StorageError("truncated batch sub-reply payload")
        raw = payload[offset:offset + length]
        offset += length
        if status == "ok":
            replies.append(BatchReply("ok", payload=raw))
        elif status == "conflict":
            replies.append(BatchReply("conflict",
                                      payload=_unpack_presence(raw)))
        elif status == "fenced":
            replies.append(BatchReply("fenced", epoch=_parse_epoch(raw)))
        elif status == "error":
            if not raw:
                raise StorageError("error sub-reply missing flag byte")
            replies.append(BatchReply(
                "error", message=raw[1:].decode(errors="replace"),
                transient=bool(raw[0])))
        else:  # missing / unattempted
            replies.append(BatchReply(status))
    if offset != len(payload):
        raise StorageError("trailing garbage after batch sub-replies")
    return replies


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            # Transient: the peer (or the network) dropped the
            # connection; a fresh connection may well succeed.
            raise TransientStorageError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_message(sock: socket.socket) -> bytes:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > _MAX_MESSAGE:
        raise StorageError("wire message exceeds limit")
    return _recv_exact(sock, length)


def _send_message(sock: socket.socket, body: bytes) -> None:
    sock.sendall(struct.pack(">I", len(body)) + body)


def dispatch_message(backend: StorageServer, message: bytes) -> bytes:
    """One request frame body -> one response frame body.

    Transport-neutral: the threaded :class:`SspServer` and the asyncio
    front-end (:mod:`repro.storage.aiowire`) both funnel every frame
    through here, so the two servers cannot drift -- same opcodes, same
    trace-context handling, same exception-to-status mapping.
    """
    if not message:
        # A length-0 frame has no opcode byte; reply ERROR rather than
        # dying on message[0].
        return bytes([STATUS_ERROR]) + b"empty request frame"
    try:
        return _Handler._traced_dispatch(backend, message[0], message[1:])
    except BlobNotFound:
        return bytes([STATUS_MISSING])
    except CasConflictError as exc:
        return bytes([STATUS_CONFLICT]) + _pack_presence(exc.current)
    except StaleEpochError as exc:
        return (bytes([STATUS_FENCED])
                + struct.pack(">Q", exc.current_epoch))
    except Exception as exc:  # surfaced to client as ERROR
        return bytes([STATUS_ERROR]) + str(exc).encode()


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        backend: StorageServer = self.server.backend  # type: ignore
        while True:
            try:
                message = _recv_message(self.request)
            except (StorageError, OSError):
                return  # client hung up / sent garbage framing
            response = dispatch_message(backend, message)
            try:
                _send_message(self.request, response)
            except OSError:
                return  # client vanished mid-reply; thread stays clean

    @classmethod
    def _traced_dispatch(cls, backend: StorageServer, opcode: int,
                         body: bytes) -> bytes:
        """Strip an optional trace-context block and install it around
        dispatch so a TracedServer backend parents its spans under the
        requesting client span."""
        if not opcode & TRACE_FLAG:
            return cls._dispatch(backend, opcode, body)
        if not OP_PUT <= opcode & (TRACE_FLAG - 1) <= OP_BATCH:
            # Garbage opcode that happens to carry the trace bit: report
            # it as unknown rather than complaining about the context.
            raise StorageError(f"unknown opcode {opcode}")
        ctx, body = decode_trace_context(body)
        from ..obs.wiretrace import pop_wire_context, push_wire_context
        token = push_wire_context(ctx)
        try:
            return cls._dispatch(backend, opcode & (TRACE_FLAG - 1), body)
        finally:
            pop_wire_context(token)

    @staticmethod
    def _dispatch(backend: StorageServer, opcode: int,
                  body: bytes) -> bytes:
        if opcode == OP_PUT:
            blob_raw, payload = _unpack_fields(body, 2)
            backend.put(_parse_blob_id(blob_raw), payload)
            return bytes([STATUS_OK])
        if opcode == OP_GET:
            (blob_raw,) = _unpack_fields(body, 1)
            payload = backend.get(_parse_blob_id(blob_raw))
            return bytes([STATUS_OK]) + payload
        if opcode == OP_DELETE:
            (blob_raw,) = _unpack_fields(body, 1)
            backend.delete(_parse_blob_id(blob_raw))
            return bytes([STATUS_OK])
        if opcode == OP_EXISTS:
            (blob_raw,) = _unpack_fields(body, 1)
            present = backend.exists(_parse_blob_id(blob_raw))
            return bytes([STATUS_OK, 1 if present else 0])
        if opcode == OP_PUT_IF:
            blob_raw, expected_raw, payload = _unpack_fields(body, 3)
            backend.put_if(_parse_blob_id(blob_raw), payload,
                           _unpack_presence(expected_raw))
            return bytes([STATUS_OK])
        if opcode == OP_PUT_FENCED:
            blob_raw, fence_raw, epoch_raw, payload = \
                _unpack_fields(body, 4)
            backend.put_fenced(_parse_blob_id(blob_raw), payload,
                               _parse_blob_id(fence_raw),
                               _parse_epoch(epoch_raw))
            return bytes([STATUS_OK])
        if opcode == OP_DELETE_FENCED:
            blob_raw, fence_raw, epoch_raw = _unpack_fields(body, 3)
            backend.delete_fenced(_parse_blob_id(blob_raw),
                                  _parse_blob_id(fence_raw),
                                  _parse_epoch(epoch_raw))
            return bytes([STATUS_OK])
        if opcode == OP_BATCH:
            # Full validation first: a malformed frame raises here and
            # becomes a top-level ERROR with zero sub-ops applied.
            ops = _decode_batch_request(body)
            replies = backend.batch(ops)
            return bytes([STATUS_OK]) + _encode_batch_reply(replies)
        raise StorageError(f"unknown opcode {opcode}")


class SspServer:
    """Threaded TCP front-end for a storage backend."""

    def __init__(self, backend: StorageServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.backend = backend

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._server.backend = backend  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "SspServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="ssp-server")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SspServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class RemoteStorageClient(StorageServer):
    """Client-side proxy: the StorageServer interface over a socket.

    Subclasses :class:`StorageServer` so everything that takes a server
    (volumes, clients, migration) works unchanged; local stats track the
    client's view of its own traffic.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 trace_context_fn=None):
        super().__init__(name=f"remote-ssp@{host}:{port}")
        self._lock = threading.Lock()
        self._addr = (host, port)
        self._timeout = timeout
        #: Optional () -> TraceContext | None; when it returns a context
        #: the request frame carries the 16-byte correlation block.
        self._trace_context_fn = trace_context_fn
        # Connect eagerly so misconfiguration fails at construction; the
        # socket reconnects lazily after any transient failure.
        self._sock: socket.socket | None = socket.create_connection(
            self._addr, timeout=timeout)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _drop_sock(self) -> None:
        """Discard a socket whose request/response stream is suspect.

        After a timeout or mid-message disconnect the stream position is
        unknown (a late response would be mis-framed as the next reply),
        so the only safe recovery is a fresh connection.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, body: bytes) -> bytes:
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        self._addr, timeout=self._timeout)
                _send_message(self._sock, body)
                return _recv_message(self._sock)
            except TransientStorageError:
                self._drop_sock()
                raise
            except OSError as exc:
                # Covers socket.timeout and connection resets: report as
                # retryable instead of crashing the filesystem client.
                self._drop_sock()
                raise TransientStorageError(
                    f"{self.name}: {exc}") from exc

    def _frame(self, opcode: int, fields: bytes) -> bytes:
        """Request frame; byte-identical to the untraced protocol unless
        the trace hook supplies a context for this request."""
        ctx = (self._trace_context_fn()
               if self._trace_context_fn is not None else None)
        if ctx is None:
            return bytes([opcode]) + fields
        return (bytes([opcode | TRACE_FLAG])
                + encode_trace_context(ctx) + fields)

    @staticmethod
    def _check(response: bytes) -> bytes:
        if not response:
            raise StorageError("empty response from SSP")
        status, payload = response[0], response[1:]
        if status == STATUS_OK:
            return payload
        if status == STATUS_MISSING:
            raise BlobNotFound("remote blob missing")
        if status == STATUS_CONFLICT:
            raise CasConflictError("remote cas conflict",
                                   current=_unpack_presence(payload))
        if status == STATUS_FENCED:
            raise StaleEpochError("remote fenced write rejected",
                                  current_epoch=_parse_epoch(payload))
        raise StorageError(f"SSP error: {payload.decode(errors='replace')}")

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self.stats.record_put(blob_id.kind, len(payload))
        body = self._frame(OP_PUT, _pack_fields(
            str(blob_id).encode(), payload))
        self._check(self._roundtrip(body))

    def get(self, blob_id: BlobId) -> bytes:
        body = self._frame(OP_GET, _pack_fields(str(blob_id).encode()))
        try:
            payload = self._check(self._roundtrip(body))
        except BlobNotFound:
            self.stats.record_miss()
            raise
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def delete(self, blob_id: BlobId) -> None:
        # Bytes freed are unknowable through the wire protocol: 0.
        self.stats.record_delete(blob_id.kind)
        body = self._frame(OP_DELETE,
                           _pack_fields(str(blob_id).encode()))
        self._check(self._roundtrip(body))

    def exists(self, blob_id: BlobId) -> bool:
        body = self._frame(OP_EXISTS,
                           _pack_fields(str(blob_id).encode()))
        payload = self._check(self._roundtrip(body))
        return bool(payload and payload[0])

    # The base class implements CAS/fencing against its own dict; the
    # proxy must ship them to the real backend instead.

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self.stats.record_put(blob_id.kind, len(payload))
        body = self._frame(OP_PUT_IF, _pack_fields(
            str(blob_id).encode(), _pack_presence(expected), payload))
        self._check(self._roundtrip(body))

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self.stats.record_put(blob_id.kind, len(payload))
        body = self._frame(OP_PUT_FENCED, _pack_fields(
            str(blob_id).encode(), str(fence).encode(),
            struct.pack(">Q", epoch), payload))
        self._check(self._roundtrip(body))

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self.stats.record_delete(blob_id.kind)
        body = self._frame(OP_DELETE_FENCED, _pack_fields(
            str(blob_id).encode(), str(fence).encode(),
            struct.pack(">Q", epoch)))
        self._check(self._roundtrip(body))

    def batch(self, ops) -> list[BatchReply]:
        """Ship all sub-ops in one OP_BATCH frame: one round trip."""
        if not ops:
            return []
        body = self._frame(OP_BATCH, _encode_batch_request(ops))
        payload = self._check(self._roundtrip(body))
        replies = _decode_batch_reply(payload, len(ops))
        for op, reply in zip(ops, replies):
            if reply.status == "ok":
                if op.kind in ("put", "put_if", "put_fenced"):
                    self.stats.record_put(op.blob_id.kind,
                                          op.sent_bytes())
                elif op.kind == "get":
                    self.stats.record_get(op.blob_id.kind,
                                          len(reply.payload or b""))
                elif op.kind in ("delete", "delete_fenced"):
                    self.stats.record_delete(op.blob_id.kind)
            elif reply.status == "missing" and op.kind == "get":
                self.stats.record_miss()
        return replies

    # The proxy cannot enumerate or audit the remote store.
    def list_kind(self, kind: str):
        raise StorageError("remote SSP does not support enumeration")

    def blob_count(self) -> int:
        raise StorageError("remote SSP does not expose its census")

    def stored_bytes(self, kind: str | None = None) -> int:
        raise StorageError("remote SSP does not expose its census")

    def raw_blobs(self) -> dict:
        raise StorageError("remote SSP does not expose raw blobs")
