"""Calibrated cost profiles.

``PAPER_2008`` reproduces the paper's testbed: a Pentium-4 1 GHz / 512 MB
Dell laptop client in Birmingham AL talking to a shared SunOS SSP at
Georgia Tech over home DSL (850 Kbit/s up, 350 Kbit/s down), with 128-bit
AES and 2048-bit RSA (NIST SP 800-78 parameters).

Calibration of the crypto constants (full arithmetic in DESIGN.md §4):

* Figure 9's PUB-OPT bars isolate *one* extra RSA private-key block per
  stat (196 s list vs 63 s for SHAROES over 525 stats) -> ~0.26 s per
  private block, and ~3 extra public blocks per create (159 s vs 131 s)
  -> ~0.014 s per public block.  The PUBLIC bars then imply its metadata
  object spans ~17 blocks (a 4 KB SiRiUS-style object with per-user
  lockboxes), which simultaneously fits both PUBLIC bars (predicted 246 s
  create / ~2380 s list vs published 245 / 2253).
* Figure 9's NO-ENC-MD vs NO-ENC-MD-D gap (127 vs 121 s over 525 creates)
  prices the symmetric cipher: ~4 ms fixed + ~1 us/byte, which also keeps
  data-path crypto under 7% of a 1 MB read as Figure 13 requires.
* getattr "completes in a little over 100 ms" (Figure 13) with the 80 ms
  RTT, a ~0.5 KB download and the fixed OTHER overhead.
* ESIGN is "over an order of magnitude faster" than RSA private ops
  (footnote 3): 10 ms sign / 5 ms verify.
"""

from __future__ import annotations

from .costmodel import CostProfile
from .network import LAN, PAPER_DSL, NetworkLink, kbits_per_sec

PAPER_2008 = CostProfile(
    name="paper2008",
    link=PAPER_DSL,
    sym_fixed_s=0.002,
    sym_per_byte_s=5.0e-7,
    pk_public_block_s=0.010,
    pk_private_block_s=0.260,
    esign_sign_s=0.003,
    esign_verify_s=0.0015,
    rsa_sign_s=0.260,   # one private block
    rsa_verify_s=0.010,  # one public block
    keyed_hash_s=0.0002,
    op_overhead_s=0.010,
)

#: Same client, LAN-class network: used by ablations to show the crypto
#: share of operation cost once the WAN stops dominating.
PAPER_2008_LAN = CostProfile(
    name="paper2008-lan",
    link=LAN,
    sym_fixed_s=PAPER_2008.sym_fixed_s,
    sym_per_byte_s=PAPER_2008.sym_per_byte_s,
    pk_public_block_s=PAPER_2008.pk_public_block_s,
    pk_private_block_s=PAPER_2008.pk_private_block_s,
    esign_sign_s=PAPER_2008.esign_sign_s,
    esign_verify_s=PAPER_2008.esign_verify_s,
    rsa_sign_s=PAPER_2008.rsa_sign_s,
    rsa_verify_s=PAPER_2008.rsa_verify_s,
    keyed_hash_s=PAPER_2008.keyed_hash_s,
    op_overhead_s=PAPER_2008.op_overhead_s,
)

#: Zero-cost profile for functional tests: the clock never advances, so
#: correctness tests run at host speed without simulated-time noise.
FREE = CostProfile(
    name="free",
    link=NetworkLink(upload_bytes_per_s=float("inf"),
                     download_bytes_per_s=float("inf"),
                     rtt_s=0.0),
    sym_fixed_s=0.0,
    sym_per_byte_s=0.0,
    pk_public_block_s=0.0,
    pk_private_block_s=0.0,
    esign_sign_s=0.0,
    esign_verify_s=0.0,
    rsa_sign_s=0.0,
    rsa_verify_s=0.0,
    keyed_hash_s=0.0,
    op_overhead_s=0.0,
)


def dsl_profile(up_kbits: float, down_kbits: float, rtt_ms: float
                ) -> CostProfile:
    """The paper-2008 client behind a custom link.

    Supports the "varying network characteristics" analysis the paper
    defers to the first author's thesis.
    """
    link = NetworkLink(
        upload_bytes_per_s=kbits_per_sec(up_kbits),
        download_bytes_per_s=kbits_per_sec(down_kbits),
        rtt_s=rtt_ms / 1000.0,
    )
    return CostProfile(
        name=f"paper2008-{up_kbits:g}/{down_kbits:g}kbit-{rtt_ms:g}ms",
        link=link,
        sym_fixed_s=PAPER_2008.sym_fixed_s,
        sym_per_byte_s=PAPER_2008.sym_per_byte_s,
        pk_public_block_s=PAPER_2008.pk_public_block_s,
        pk_private_block_s=PAPER_2008.pk_private_block_s,
        esign_sign_s=PAPER_2008.esign_sign_s,
        esign_verify_s=PAPER_2008.esign_verify_s,
        rsa_sign_s=PAPER_2008.rsa_sign_s,
        rsa_verify_s=PAPER_2008.rsa_verify_s,
        keyed_hash_s=PAPER_2008.keyed_hash_s,
        op_overhead_s=PAPER_2008.op_overhead_s,
    )
