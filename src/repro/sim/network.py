"""Wide-area network model.

The paper's testbed: SSP at Georgia Tech (Atlanta), client in Birmingham AL
on a home DSL line with measured 850 Kbit/s up and 350 Kbit/s down.  The
dominant cost of every filesystem operation in the evaluation is this link,
so the model is simple and explicit: each request pays one round-trip
latency plus serialized transfer time in each direction.

Bandwidth asymmetry matters for reproducing Figure 13: reading a 1 MB file
(~23 s on the slow downlink) costs far more than writing one (~10 s on the
faster uplink), exactly as the paper's bar chart shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def kbits_per_sec(kbits: float) -> float:
    """Convert link speed in Kbit/s to bytes/s."""
    return kbits * 1000.0 / 8.0


@dataclass(frozen=True)
class NetworkLink:
    """A client <-> SSP link with asymmetric bandwidth.

    Attributes
    ----------
    upload_bytes_per_s / download_bytes_per_s:
        Serialized transfer rates, client's perspective.
    rtt_s:
        Round-trip latency charged once per request.
    """

    upload_bytes_per_s: float
    download_bytes_per_s: float
    rtt_s: float

    def upload_time(self, num_bytes: int) -> float:
        return num_bytes / self.upload_bytes_per_s

    def download_time(self, num_bytes: int) -> float:
        return num_bytes / self.download_bytes_per_s

    def transfer_time(self, up_bytes: int, down_bytes: int) -> float:
        """Serialized payload transfer time, excluding latency.

        The RTT/transfer split matters once requests overlap: concurrent
        requests can hide each other's *latency* but still share the
        *link*, so only the RTT component may be amortized.
        """
        return self.upload_time(up_bytes) + self.download_time(down_bytes)

    def request_time(self, up_bytes: int, down_bytes: int,
                     round_trips: int = 1) -> float:
        """Time for one request: RTTs plus payload transfer each way."""
        return (round_trips * self.rtt_s
                + self.transfer_time(up_bytes, down_bytes))

    def flight_time(self, transfers: Sequence[tuple[int, int]],
                    parallel: int = 1) -> float:
        """Elapsed time for a *flight*: N requests with up to ``parallel``
        concurrently in flight on this one link.

        ``transfers`` is one ``(up_bytes, down_bytes)`` pair per request.
        The model is honest about what a single shared link can and
        cannot overlap:

        * **latency overlaps** -- up to ``parallel`` requests wait out
          their round trips together, so N requests pay
          ``ceil(N / parallel)`` RTT *waves* instead of N RTTs;
        * **bandwidth does not** -- every byte still crosses the same
          asymmetric pipe, so transfer time is the full serialized sum,
          exactly as if the requests had run back to back.

        With ``parallel=1`` (or a single request) this degrades to the
        sum of :meth:`request_time` over the transfers, which is what
        keeps the sequential cost model's numbers unchanged.
        """
        count = len(transfers)
        if count == 0:
            return 0.0
        waves = math.ceil(count / max(1, parallel))
        up = sum(pair[0] for pair in transfers)
        down = sum(pair[1] for pair in transfers)
        return waves * self.rtt_s + self.transfer_time(up, down)


#: The paper's measured home-DSL link (section V-A).  The 100 ms RTT is
#: fitted from Figure 9's NO-ENC-MD-D bars (two round trips per create,
#: one per stat); plausible for 2008 consumer DSL over ~150 miles.
PAPER_DSL = NetworkLink(
    upload_bytes_per_s=kbits_per_sec(850),
    download_bytes_per_s=kbits_per_sec(350),
    rtt_s=0.100,
)

#: A LAN-class link, used by ablation benchmarks to show how the
#: crypto-vs-network balance shifts when the network is fast.
LAN = NetworkLink(
    upload_bytes_per_s=kbits_per_sec(100_000),
    download_bytes_per_s=kbits_per_sec(100_000),
    rtt_s=0.0005,
)
