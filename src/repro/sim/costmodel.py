"""Cost model: converts operation counts into simulated 2008-testbed time.

The paper breaks every filesystem operation into three components
(Figure 13): **NETWORK** (WAN transfers), **CRYPTO** (cipher and signature
work) and **OTHER** (FUSE dispatch, serialization, bookkeeping).  The
:class:`CostModel` accumulates simulated seconds in exactly those buckets.

It plugs into the rest of the library in two ways:

* it is registered as a listener on the :class:`~repro.crypto.provider.
  CryptoProvider`, so every real cryptographic call automatically charges
  its simulated cost;
* filesystem clients call :meth:`charge_request` for SSP round trips and
  :meth:`charge_other` for fixed per-operation overhead.

Nested :meth:`span` context managers capture per-operation component
breakdowns, which is how the Figure 13 benchmark reports per-op costs while
the same model also accumulates whole-benchmark totals for Figures 9-12.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..crypto.provider import CryptoEvent
from .clock import SimClock
from .network import NetworkLink

NETWORK = "network"
CRYPTO = "crypto"
OTHER = "other"
COMPUTE = "compute"  # local application CPU (e.g. the Andrew compile phase)

_CATEGORIES = (NETWORK, CRYPTO, OTHER, COMPUTE)


@dataclass(frozen=True)
class CostProfile:
    """Calibrated per-operation costs of the simulated client.

    The ``paper2008`` instance in :mod:`repro.sim.profiles` documents how
    each constant was derived from the published figures.
    """

    name: str
    link: NetworkLink
    #: symmetric cipher: fixed per call + per byte (2008 laptop AES-128)
    sym_fixed_s: float
    sym_per_byte_s: float
    #: RSA-2048, per 256-byte block
    pk_public_block_s: float
    pk_private_block_s: float
    #: ESIGN sign/verify (fast scheme, paper footnote 3)
    esign_sign_s: float
    esign_verify_s: float
    #: RSA used as a signature scheme (PUBLIC comparator)
    rsa_sign_s: float
    rsa_verify_s: float
    #: keyed hash (exec-only row key derivation)
    keyed_hash_s: float
    #: fixed OTHER overhead per filesystem operation (FUSE + serialization)
    op_overhead_s: float

    def crypto_time(self, event: CryptoEvent) -> float:
        """Simulated seconds for one crypto event."""
        if event.kind in ("sym_encrypt", "sym_decrypt"):
            return self.sym_fixed_s + event.num_bytes * self.sym_per_byte_s
        if event.kind == "pk_encrypt":
            return event.blocks * self.pk_public_block_s
        if event.kind == "pk_decrypt":
            return event.blocks * self.pk_private_block_s
        if event.kind == "sign":
            return self.esign_sign_s
        if event.kind == "verify":
            return self.esign_verify_s
        if event.kind == "sign_rsa":
            return self.rsa_sign_s
        if event.kind == "verify_rsa":
            return self.rsa_verify_s
        if event.kind == "keyed_hash":
            return self.keyed_hash_s
        raise ValueError(f"unknown crypto event kind {event.kind!r}")


@dataclass
class CostBreakdown:
    """Accumulated simulated seconds per component."""

    seconds: dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in _CATEGORIES})

    def add(self, category: str, amount: float) -> None:
        self.seconds[category] += amount

    @property
    def network(self) -> float:
        return self.seconds[NETWORK]

    @property
    def crypto(self) -> float:
        return self.seconds[CRYPTO]

    @property
    def other(self) -> float:
        return self.seconds[OTHER]

    @property
    def compute(self) -> float:
        return self.seconds[COMPUTE]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.seconds)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}" for k, v in self.seconds.items())
        return f"CostBreakdown({parts}, total={self.total:.3f})"


class CostModel:
    """Charges simulated time into component buckets and the clock."""

    def __init__(self, profile: CostProfile, clock: SimClock | None = None):
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        self.totals = CostBreakdown()
        self._spans: list[CostBreakdown] = []
        #: observability hook (see repro.obs.tracing.Tracer.on_charge):
        #: the mounted client installs its tracer here so every charge is
        #: attributed to the innermost open operation span.  A single
        #: slot, not a listener list -- cache-sweep harnesses mint many
        #: short-lived clients against one cost model, and only the
        #: newest client's tracer should observe charges.
        self.tracer = None

    # -- charging ------------------------------------------------------------

    def charge(self, category: str, seconds: float) -> None:
        if category not in _CATEGORIES:
            raise ValueError(f"unknown cost category {category!r}")
        if seconds < 0:
            raise ValueError("negative cost")
        self.totals.add(category, seconds)
        for span in self._spans:
            span.add(category, seconds)
        if self.tracer is not None:
            self.tracer.on_charge(category, seconds)
        self.clock.advance(seconds)

    def charge_request(self, up_bytes: int, down_bytes: int,
                       round_trips: int = 1) -> None:
        """One SSP request: RTT(s) plus payload transfer time."""
        self.charge(NETWORK, self.profile.link.request_time(
            up_bytes, down_bytes, round_trips))

    def charge_flight(self, transfers, parallel: int = 1) -> None:
        """A flight of overlapped requests (see ``NetworkLink.flight_time``).

        ``transfers`` is one ``(up_bytes, down_bytes)`` pair per request;
        up to ``parallel`` requests share each RTT wave while their
        payload bytes still serialize on the link.  ``parallel=1`` is
        byte-for-byte identical to charging each request individually,
        which is the cost-parity contract the sequential client relies
        on (tests/test_flight_costs.py pins it).
        """
        self.charge(NETWORK, self.profile.link.flight_time(
            transfers, parallel))

    def charge_other(self, seconds: float | None = None) -> None:
        """Fixed per-operation overhead (FUSE dispatch, serialization)."""
        if seconds is None:
            seconds = self.profile.op_overhead_s
        self.charge(OTHER, seconds)

    def charge_compute(self, seconds: float) -> None:
        """Local application CPU time (e.g. a compile phase)."""
        self.charge(COMPUTE, seconds)

    def charge_wait(self, seconds: float) -> None:
        """Deliberate idle waiting (lease contention backoff, pacing).

        Charged as OTHER, not NETWORK: nothing crosses the WAN while a
        client sits out a backoff window, but the wait must still
        advance the simulated clock (lease expiry is clock-driven) and
        show up in breakdowns so backoff policies have a visible cost.
        """
        self.charge(OTHER, seconds)

    def on_crypto_event(self, event: CryptoEvent) -> None:
        """CryptoProvider listener: charge the event's simulated cost."""
        self.charge(CRYPTO, self.profile.crypto_time(event))

    # -- measurement ------------------------------------------------------------

    @contextmanager
    def span(self) -> Iterator[CostBreakdown]:
        """Capture the costs charged inside the ``with`` block."""
        breakdown = CostBreakdown()
        self._spans.append(breakdown)
        try:
            yield breakdown
        finally:
            self._spans.remove(breakdown)

    def reset(self) -> None:
        self.totals = CostBreakdown()
        self.clock.reset()
