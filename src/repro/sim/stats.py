"""Summary statistics for repeated benchmark runs.

The paper: "all experiments were repeated ten times and results were
averaged" (section V-A).  Our simulation is deterministic given a seed,
so repetition varies the *workload* seed (file sizes, transaction mix,
payloads) rather than re-rolling measurement noise -- the honest analogue
for a simulated testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted series."""
    if not ordered:
        raise ValueError("cannot take a percentile of an empty series")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class Percentiles:
    """The three tail quantiles every report in this repo quotes.

    Shared by :class:`Summary` (exact, from raw values, one sort) and the
    observability histograms (estimated from fixed buckets), so the txt
    tables and the ``BENCH_*.json`` files agree on definitions.
    """

    p50: float
    p95: float
    p99: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Percentiles":
        ordered = sorted(values)
        return cls(p50=_percentile_sorted(ordered, 50),
                   p95=_percentile_sorted(ordered, 95),
                   p99=_percentile_sorted(ordered, 99))

    def as_dict(self) -> dict[str, float]:
        return {"p50": self.p50, "p95": self.p95, "p99": self.p99}

    def __str__(self) -> str:
        return (f"p50={self.p50:.3g} p95={self.p95:.3g} "
                f"p99={self.p99:.3g}")


@dataclass(frozen=True)
class Summary:
    """Mean/stdev/extremes (and tail quantiles) of one measured series."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    percentiles: Percentiles | None = None

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.n) if self.n else 0.0

    @property
    def p50(self) -> float:
        return self.percentiles.p50 if self.percentiles else self.mean

    @property
    def p95(self) -> float:
        return self.percentiles.p95 if self.percentiles else self.maximum

    @property
    def p99(self) -> float:
        return self.percentiles.p99 if self.percentiles else self.maximum

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.stderr
        return self.mean - half, self.mean + half

    def as_dict(self) -> dict[str, float]:
        out = {"n": self.n, "mean": self.mean, "stdev": self.stdev,
               "min": self.minimum, "max": self.maximum}
        if self.percentiles is not None:
            out.update(self.percentiles.as_dict())
        return out

    def __str__(self) -> str:
        return (f"{self.mean:.1f} ± {self.stdev:.1f} "
                f"(n={self.n}, range {self.minimum:.1f}"
                f"-{self.maximum:.1f})")


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarize an empty series")
    n = len(values)
    mean = sum(values) / n
    variance = (sum((v - mean) ** 2 for v in values) / (n - 1)
                if n > 1 else 0.0)
    return Summary(n=n, mean=mean, stdev=math.sqrt(variance),
                   minimum=min(values), maximum=max(values),
                   percentiles=Percentiles.from_values(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    return _percentile_sorted(sorted(values), q)


def repeat_runs(run: Callable[[int], float], repetitions: int = 10,
                base_seed: int = 100) -> Summary:
    """The paper's protocol: run ``repetitions`` times, average.

    ``run(seed)`` must return the measured value for that seed.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    return summarize([run(base_seed + i) for i in range(repetitions)])
