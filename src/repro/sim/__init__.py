"""Simulated environment: clock, WAN link and calibrated cost model.

The paper's evaluation ran against a real SSP 150 miles away over home DSL;
this package substitutes a deterministic simulation of that testbed (see
DESIGN.md §4 for the substitution rationale and calibration).
"""

from .clock import SimClock
from .costmodel import (COMPUTE, CRYPTO, NETWORK, OTHER, CostBreakdown,
                        CostModel, CostProfile)
from .network import LAN, PAPER_DSL, NetworkLink, kbits_per_sec
from .profiles import FREE, PAPER_2008, PAPER_2008_LAN, dsl_profile
from .stats import Summary, percentile, repeat_runs, summarize

__all__ = [
    "SimClock",
    "CostBreakdown",
    "CostModel",
    "CostProfile",
    "NETWORK",
    "CRYPTO",
    "OTHER",
    "COMPUTE",
    "NetworkLink",
    "PAPER_DSL",
    "LAN",
    "kbits_per_sec",
    "FREE",
    "PAPER_2008",
    "PAPER_2008_LAN",
    "dsl_profile",
    "Summary",
    "summarize",
    "percentile",
    "repeat_runs",
]
