"""Simulated clock.

Benchmark numbers in this reproduction are *simulated seconds on the
paper's 2008 testbed*, not host wall time: a pure-Python AES call on a 2024
machine tells you nothing about 128-bit AES on a Pentium-4 laptop, but a
calibrated cost model does.  Every component that spends simulated time
advances a shared :class:`SimClock`.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
