"""Command-line interface: ``python -m repro`` (or ``sharoes-repro``).

Subcommands:

* ``selftest``  -- run the cryptographic self-test (AES vectors, RSA,
  ESIGN, IBE roundtrips);
* ``demo``      -- a compact end-to-end sharing demo on an in-memory SSP;
* ``bench``     -- regenerate one of the paper's figures (fig9, fig10,
  fig11, fig12, fig13) at a chosen scale, run a named workload with
  ``--workload`` and write a machine-readable ``BENCH_<name>.json``,
  diff two BENCH documents as a perf-regression gate (``--diff``), or
  print the committed benchmark trajectory (``--list``);
* ``stats``     -- run a workload and dump the unified metrics registry
  (human table or Prometheus text) plus the per-operation cost table;
* ``trace``     -- run a workload and emit its operation spans as
  JSON-lines (one root span per line, child phases nested), optionally
  with a sampled structured-event log (``--events``);
* ``profile``   -- run a workload wire-traced (client + server spans
  stitched into one tree) and render it as folded stacks, speedscope
  JSON, a top-N self-time table, or the per-depth resolve-attribution
  report;
* ``inspect``   -- build a demo volume and dump what the untrusted SSP
  actually sees.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .crypto import aes, esign, ibe, rsa, stream

    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plain = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert aes.AES(key).encrypt_block(plain) == expected
    print("AES-128 FIPS-197 vector          ok")

    msg = b"selftest payload" * 4
    assert aes.decrypt_ctr(key, aes.encrypt_ctr(key, msg)) == msg
    assert stream.open_sealed(key, stream.seal(key, msg)) == msg
    print("AES-CTR / stream seal roundtrip  ok")

    pair = rsa.generate_keypair(512)
    assert rsa.decrypt_blob(pair.private,
                            rsa.encrypt_blob(pair.public, msg)) == msg
    rsa.verify(pair.public, msg, rsa.sign(pair.private, msg))
    print("RSA encrypt/sign roundtrip       ok")

    sig_pair = esign.generate_keypair(prime_bits=96)
    esign.verify(sig_pair.verification, msg,
                 esign.sign(sig_pair.signing, msg))
    print("ESIGN sign/verify roundtrip      ok")

    authority = ibe.KeyAuthority(modulus_bits=256)
    identity = "selftest@example"
    blob = ibe.encrypt(authority.params, identity, b"bootstrap-key-16")
    assert ibe.decrypt(authority.params, authority.extract(identity),
                       blob) == b"bootstrap-key-16"
    print("Cocks IBE roundtrip              ok")
    print("all self-tests passed")
    return 0


def _demo_stack():
    from .crypto.provider import CryptoProvider
    from .fs.client import SharoesFilesystem
    from .fs.volume import SharoesVolume
    from .principals.groups import GroupKeyService
    from .principals.registry import PrincipalRegistry
    from .storage.server import StorageServer

    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    bob = registry.create_user("bob", key_bits=512)
    registry.create_user("carol", key_bits=512)
    registry.create_group("eng", {"alice", "bob"}, key_bits=512)
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fs = SharoesFilesystem(volume, alice)
    fs.mount()
    return registry, server, volume, fs


def _cmd_demo(args: argparse.Namespace) -> int:
    from .errors import PermissionDenied
    from .fs.client import SharoesFilesystem

    registry, server, volume, alice_fs = _demo_stack()
    alice_fs.mkdir("/projects", mode=0o750)
    alice_fs.create_file("/projects/plan.txt", b"ship it", mode=0o640)
    print("alice created /projects/plan.txt (rw-r----- alice:eng)")

    bob_fs = SharoesFilesystem(volume, registry.user("bob"))
    bob_fs.mount()
    print("bob (group eng) reads:",
          bob_fs.read_file("/projects/plan.txt").decode())

    carol_fs = SharoesFilesystem(volume, registry.user("carol"))
    carol_fs.mount()
    try:
        carol_fs.read_file("/projects/plan.txt")
    except PermissionDenied:
        print("carol (other) denied at the 750 directory")

    leaked = any(b"ship it" in payload
                 for payload in server.raw_blobs().values())
    print(f"SSP blobs: {server.blob_count()}, plaintext leaked: {leaked}")
    return 0


def _workload_params(workload: str, scale: float) -> dict:
    """Scaled parameters for one named workload (andrew has none)."""
    if workload == "postmark":
        return {"files": max(10, int(500 * scale)),
                "transactions": max(10, int(500 * scale))}
    if workload == "createlist":
        return {"files": max(4, int(500 * scale)),
                "dirs": max(1, int(25 * scale))}
    return {}


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    from .obs.bench import write_bench_json
    from .workloads.throughput import run_throughput

    clients = max(4, int(100 * args.scale))
    ops = 20 if args.scale >= 1 else 10
    result = run_throughput(clients=clients, ops_per_client=ops,
                            concurrency=args.concurrency)
    lat = result["latency_s"]
    print(f"throughput: {clients} clients x {ops} ops, "
          f"concurrency={args.concurrency}")
    print(f"  {result['ops_per_sec']:.3f} ops/s over "
          f"{result['sim_seconds']:.1f} simulated s; latency p50 "
          f"{lat['p50']:.3f}s p95 {lat['p95']:.3f}s p99 "
          f"{lat['p99']:.3f}s; {result['lease_conflicts']} lease "
          f"conflicts; fsck {'clean' if result['fsck_clean'] else 'DIRTY'}")
    path = write_bench_json({"name": "throughput", **result},
                            args.out_dir)
    print(f"wrote {path}")
    return 0 if result["fsck_clean"] else 1


def _cmd_bench_workload(args: argparse.Namespace) -> int:
    from .obs.bench import write_bench_json
    from .obs.export import op_table
    from .workloads import run_observed

    if args.workload == "throughput":
        return _cmd_bench_throughput(args)
    config = None
    if args.shards or args.concurrency:
        from .fs.client import ClientConfig
        config = ClientConfig(shards=args.shards,
                              replicas=args.replicas,
                              concurrency=args.concurrency)
    payload, _spans = run_observed(
        args.workload, impl=args.impl,
        params=_workload_params(args.workload, args.scale),
        flaky_p=args.flaky_p, flaky_seed=args.flaky_seed,
        config=config)
    print(op_table(payload, title=f"{args.workload} per-operation costs "
                                  f"({args.impl})"))
    path = write_bench_json(payload, args.out_dir)
    print(f"wrote {path}")
    return 0


def _parse_resolve_gates(specs: list[str] | None,
                         flag: str = "--resolve-gate"
                         ) -> dict[str, float]:
    """``["andrew=0.5", ...]`` -> ``{"andrew": 0.5}``."""
    gates: dict[str, float] = {}
    for spec in specs or ():
        workload, sep, ratio = spec.partition("=")
        if not sep or not workload:
            raise SystemExit(
                f"{flag} {spec!r}: expected WORKLOAD=RATIO")
        try:
            gates[workload] = float(ratio)
        except ValueError:
            raise SystemExit(
                f"{flag} {spec!r}: {ratio!r} is not a number")
    return gates


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from .obs.bench import diff_bench, format_diff_table, load_bench

    old_path, new_path = args.diff
    diff = diff_bench(load_bench(old_path), load_bench(new_path),
                      wall_tol=args.wall_tol,
                      request_tol=args.request_tol,
                      phase_tol=args.phase_tol,
                      resolve_gates=_parse_resolve_gates(
                          args.resolve_gate),
                      overlap_gates=_parse_resolve_gates(
                          args.overlap_gate, flag="--overlap-gate"))
    print(format_diff_table(
        diff, title=f"bench diff: {old_path} -> {new_path}"))
    for line in diff["regressions"]:
        print(f"REGRESSION: {line}", file=sys.stderr)
    if not diff["ok"]:
        return 1
    print("no regressions")
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from .obs.bench import bench_trajectory, format_trajectory_table

    rows = bench_trajectory(args.out_dir)
    if not rows:
        print(f"no BENCH_<pr>.json documents under {args.out_dir}",
              file=sys.stderr)
        return 1
    print(format_trajectory_table(
        rows, title=f"bench trajectory ({args.out_dir})"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .workloads import (IMPLEMENTATIONS, LABELS, OPERATIONS,
                            PAPER_FIG9, PAPER_FIG12, make_env, run_andrew,
                            run_create_and_list, run_op_costs,
                            run_postmark)
    from .workloads.report import (ComparisonRow, format_comparison,
                                   format_table)

    if args.list:
        return _cmd_bench_list(args)
    if args.diff is not None:
        return _cmd_bench_diff(args)
    if args.workload is not None:
        return _cmd_bench_workload(args)
    figure = args.figure
    scale = args.scale
    if figure is None:
        print("bench: provide a figure (fig9..fig13), --workload, "
              "--diff OLD NEW, or --list", file=sys.stderr)
        return 2
    if figure == "fig9":
        files, dirs = int(500 * scale), max(1, int(25 * scale))
        for phase in ("create", "list"):
            rows = []
            for impl in IMPLEMENTATIONS:
                result = run_create_and_list(make_env(impl), files=files,
                                             dirs=dirs)
                rows.append(ComparisonRow(
                    LABELS[impl], PAPER_FIG9[impl][phase] * scale,
                    getattr(result, f"{phase}_seconds")))
            print(format_comparison(
                f"Figure 9 {phase} ({files} files; paper scaled "
                f"x{scale:g})", rows))
    elif figure == "fig10":
        from .workloads import FIG10_CACHE_FRACTIONS, FIG10_IMPLS
        files = tx = int(500 * scale)
        headers = ["implementation"] + [
            f"{int(f * 100)}%" for f in FIG10_CACHE_FRACTIONS]
        rows = []
        for impl in FIG10_IMPLS:
            env = make_env(impl)
            rows.append([LABELS[impl]] + [
                f"{run_postmark(env, files=files, transactions=tx, cache_fraction=f).total_seconds:.0f}"
                for f in FIG10_CACHE_FRACTIONS])
        print(format_table(f"Figure 10 Postmark ({files} files/{tx} tx)",
                           headers, rows))
    elif figure in ("fig11", "fig12"):
        impls = ("no-enc-md-d", "no-enc-md", "sharoes", "pub-opt")
        results = {impl: run_andrew(make_env(impl)) for impl in impls}
        if figure == "fig11":
            headers = ["implementation", "mkdir", "copy", "stat", "read",
                       "compile"]
            rows = [[LABELS[i]] + [f"{results[i].phase_seconds[p]:.1f}"
                                   for p in ("mkdir", "copy", "stat",
                                             "read", "compile")]
                    for i in impls]
            print(format_table("Figure 11 Andrew phases (s)", headers,
                               rows))
        else:
            rows = [ComparisonRow(LABELS[i], PAPER_FIG12[i],
                                  results[i].total_seconds)
                    for i in impls]
            print(format_comparison("Figure 12 Andrew cumulative", rows))
    elif figure == "fig13":
        costs = run_op_costs(make_env("sharoes"))
        rows = [[op, f"{costs[op].network_s * 1000:.0f}",
                 f"{costs[op].crypto_s * 1000:.0f}",
                 f"{costs[op].other_s * 1000:.0f}",
                 f"{costs[op].crypto_fraction * 100:.1f}%"]
                for op in OPERATIONS]
        print(format_table("Figure 13 SHAROES op costs (ms)",
                           ["operation", "NETWORK", "CRYPTO", "OTHER",
                            "crypto%"], rows))
    else:
        print(f"unknown figure {figure!r}", file=sys.stderr)
        return 2
    return 0


#: Metric prefixes that make up the ``repro stats`` cache section: the
#: byte-budgeted store, the PR 7 verified metadata cache, the readahead
#: buffer it shares a coherence surface with, and the resolve walk
#: hit/miss split those caches feed.
_CACHE_METRIC_PREFIXES = ("client.cache.", "client.mdcache.",
                          "client.readahead.", "client.resolve.")


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs.export import metrics_table, op_table, prometheus_text
    from .obs.metrics import MetricsRegistry
    from .workloads import run_observed

    params = _workload_params(args.workload, args.scale)
    if args.mdcache:
        if args.workload != "andrew":
            print("stats: --mdcache applies to --workload andrew (the "
                  "other harnesses fix their own client configs)",
                  file=sys.stderr)
            return 2
        params["mdcache"] = True
    payload, _spans = run_observed(
        args.workload, impl=args.impl, params=params,
        flaky_p=args.flaky_p, flaky_seed=args.flaky_seed)
    # The run's registry snapshot travels in the payload; rehydrate it
    # as plain gauges so every exporter renders the same numbers.
    registry = MetricsRegistry()
    cache_registry = MetricsRegistry()
    for name, value in payload["metrics"].items():
        registry.gauge(name).set(value)
        if name.startswith(_CACHE_METRIC_PREFIXES):
            cache_registry.gauge(name).set(value)
    if args.format == "prom":
        print(prometheus_text(registry), end="")
        return 0
    print(op_table(payload, title=f"{args.workload} per-operation costs "
                                  f"({args.impl})"))
    if len(cache_registry.snapshot()):
        print(metrics_table(cache_registry,
                            title=f"{args.workload} cache behaviour "
                                  "(see docs/CACHING.md)"))
    print(metrics_table(registry,
                        title=f"{args.workload} metrics snapshot"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.export import spans_to_jsonl
    from .workloads import run_observed

    event_log = None
    sinks: tuple = ()
    if args.events is not None:
        from .obs.eventlog import EventLog
        event_log = EventLog(sample=args.sample)
        sinks = (event_log.span_sink,)
    _payload, spans = run_observed(
        args.workload, impl=args.impl,
        params=_workload_params(args.workload, args.scale),
        tracer_sinks=sinks)
    text = spans_to_jsonl(spans)
    if args.out is not None:
        import pathlib
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {len(spans)} spans to {args.out}")
    else:
        print(text)
    if event_log is not None:
        event_log.write(args.events)
        stats = event_log.stats()
        print(f"wrote {stats['retained']} events to {args.events} "
              f"(accepted {stats['accepted']}, sampled out "
              f"{stats['sampled_out']}, dropped {stats['dropped']})",
              file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json
    import pathlib

    from .obs import profile as prof

    if args.input is not None:
        roots = prof.load_spans_jsonl(args.input)
        source = args.input
    else:
        from .workloads import run_traced
        _payload, roots, orphans, _env = run_traced(
            args.workload, impl=args.impl,
            params=_workload_params(args.workload, args.scale))
        if orphans:
            print(f"warning: {len(orphans)} unstitched server spans",
                  file=sys.stderr)
        source = f"{args.workload} ({args.impl})"
    if args.format == "folded":
        text = prof.folded_stacks(roots)
    elif args.format == "speedscope":
        text = _json.dumps(prof.speedscope_document(roots, name=source),
                           indent=1, sort_keys=True) + "\n"
    elif args.format == "top":
        text = prof.format_self_time_table(
            prof.self_time_report(roots, top=args.top),
            title=f"top self time: {source}") + "\n"
    else:  # resolve
        report = prof.resolve_attribution(roots)
        if args.out is not None and args.out.endswith(".json"):
            text = _json.dumps(report, indent=2, sort_keys=True) + "\n"
        else:
            text = prof.format_resolve_table(
                report, title=f"resolve attribution: {source}") + "\n"
    if args.out is not None:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    registry, server, volume, fs = _demo_stack()
    fs.mkdir("/data", mode=0o755)
    for i in range(args.files):
        fs.create_file(f"/data/file{i}.bin", bytes(range(256)) * 4,
                       mode=0o640)
    by_kind: dict[str, tuple[int, int]] = {}
    for blob_id, payload in server.raw_blobs().items():
        count, size = by_kind.get(blob_id.kind, (0, 0))
        by_kind[blob_id.kind] = (count + 1, size + len(payload))
    print(f"SSP view of a {args.files}-file volume "
          f"({server.blob_count()} blobs, {server.stored_bytes()} B):")
    for kind in sorted(by_kind):
        count, size = by_kind[kind]
        print(f"  {kind:10s} {count:4d} blobs  {size:8d} B")
    sample_id = next(iter(server.list_kind("meta")))
    sample = server.get(sample_id)
    printable = sum(32 <= b < 127 for b in sample) / len(sample)
    print(f"sample metadata blob {sample_id}: {len(sample)} B, "
          f"{printable:.0%} printable bytes (ciphertext)")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .fs.volume import block_blob_id
    from .tools.fsck import VolumeAuditor

    registry, server, volume, fs = _demo_stack()
    fs.mkdir("/docs", mode=0o755)
    fs.create_file("/docs/a.txt", b"content a", mode=0o644)
    fs.create_file("/docs/b.txt", b"content b", mode=0o600)
    if args.corrupt:
        inode = fs.getattr("/docs/a.txt").inode
        blob = bytearray(server.get(block_blob_id(inode, 0)))
        blob[10] ^= 1
        server.put(block_blob_id(inode, 0), bytes(blob))
        print("injected a bit flip into /docs/a.txt's data block")
    if args.stranded:
        # A journaled client dies mid-rename: its signed intent stays
        # pending at the SSP for --repair to roll forward.
        from .errors import ClientCrashed
        from .fs.client import ClientConfig, SharoesFilesystem
        from .storage.resilient import CrashingServer
        crasher = CrashingServer(server, crash_after=3)
        dying = SharoesFilesystem(volume, registry.user("alice"),
                                  config=ClientConfig(journal=True,
                                                      lease=True),
                                  server=crasher)
        dying.mount()
        try:
            dying.rename("/docs/a.txt", "/docs/renamed.txt")
        except ClientCrashed:
            print("stranded a dying client's rename mid-apply")
    auditor = VolumeAuditor(volume)
    report = auditor.audit()
    print(report.summary())
    for err in report.integrity_errors:
        print("  integrity:", err)
    for err in report.structural_errors:
        print("  structure:", err)
    for blob in report.orphaned_blobs:
        print("  orphan:", blob)
    for intent in report.pending_intents:
        print("  pending intent:", intent)
    if args.repair:
        repair = auditor.repair()
        print(repair.summary())
        for item in repair.completed_intents:
            print("  completed intent:", item)
        for item in repair.rejected_journals:
            print("  rejected journal:", item)
        for item in repair.reclaimed_blobs:
            print("  reclaimed:", item)
        for item in repair.advanced_epochs:
            print("  advanced epoch:", item)
        report = repair.audit
        print(report.summary())
        return 0 if report.clean and not report.orphaned_blobs else 1
    return 0 if report.clean else 1


def _cmd_crash_matrix(args: argparse.Namespace) -> int:
    from .tools.crashmatrix import (FSCK, MOUNT, CrashMatrix, build_cases,
                                    outcomes_table)

    matrix = CrashMatrix(seed=args.seed)
    recoveries = {"mount": (MOUNT,), "fsck": (FSCK,),
                  "both": (MOUNT, FSCK)}[args.recovery]
    cases = build_cases(matrix.data, matrix.new)
    if args.ops:
        wanted = set(args.ops.split(","))
        known = {c.name for c in cases}
        if wanted - known:
            print(f"unknown ops: {sorted(wanted - known)}; "
                  f"choose from {sorted(known)}")
            return 2
        cases = [c for c in cases if c.name in wanted]
    outcomes = matrix.run(recoveries, cases)
    table = outcomes_table(outcomes)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out}")
    print(table)
    return 0 if all(o.consistent for o in outcomes) else 1


def _cmd_interleave(args: argparse.Namespace) -> int:
    from .tools.interleave import (MODES, InterleaveMatrix, build_cases,
                                   outcomes_table)

    matrix = InterleaveMatrix(seed=args.seed)
    modes = MODES
    if args.modes:
        wanted = tuple(args.modes.split(","))
        if set(wanted) - set(MODES):
            print(f"unknown modes: {sorted(set(wanted) - set(MODES))}; "
                  f"choose from {list(MODES)}")
            return 2
        modes = wanted
    cases = build_cases(matrix.payloads)
    if args.cases:
        wanted_cases = set(args.cases.split(","))
        known = {c.name for c in cases}
        if wanted_cases - known:
            print(f"unknown cases: {sorted(wanted_cases - known)}; "
                  f"choose from {sorted(known)}")
            return 2
        cases = [c for c in cases if c.name in wanted_cases]
    outcomes = matrix.run(modes, cases)
    table = outcomes_table(outcomes)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out}")
    print(table)
    return 0 if all(o.consistent for o in outcomes) else 1


def _cmd_shard_repair(args: argparse.Namespace) -> int:
    """Demo: lose a shard mid-workload, bring it back, anti-entropy."""
    from .crypto.provider import CryptoProvider
    from .fs.client import SharoesFilesystem
    from .fs.volume import SharoesVolume
    from .principals.groups import GroupKeyService
    from .principals.registry import PrincipalRegistry
    from .storage.shards import ShardedServer
    from .tools.fsck import VolumeAuditor

    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    registry.create_group("eng", {"alice"}, key_bits=512)
    server = ShardedServer(shards=args.shards, replicas=args.replicas)
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fs = SharoesFilesystem(volume, alice)
    fs.mount()
    fs.mkdir("/docs", mode=0o755)
    for i in range(args.files // 2):
        fs.create_file(f"/docs/pre{i}.txt", f"before outage {i}".encode())
    down = args.down % args.shards
    server.outage(down)
    print(f"shard {down} of {args.shards} down "
          f"(replicas={args.replicas}); workload continues:")
    for i in range(args.files - args.files // 2):
        fs.create_file(f"/docs/post{i}.txt", f"during outage {i}".encode())
    gaps = server.under_replicated()
    print(f"  {len(gaps)} blobs under-replicated while it was out")
    server.clear_wrappers()
    print(f"shard {down} back; running anti-entropy:")
    report = server.repair()
    if not report.fully_replicated:
        report = server.repair()
    print(f"  {report.summary()}")
    for blob_id in report.remaining:
        print(f"  still pending: {blob_id}")
    audit = VolumeAuditor(volume).audit()
    print(f"post-repair audit: {audit.summary()}")
    snap = server.shard_snapshot()
    print(f"reads: {snap['reads.failover']:.0f} failovers, "
          f"{snap['reads.quorum']:.0f} quorum; writes: "
          f"{snap['writes.partial']:.0f} partial")
    return 0 if (report.fully_replicated and audit.clean
                 and not server.under_replicated()) else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .tools.campaign import (DEFAULT_SCENARIOS, Campaign,
                                 campaign_table)
    from .tools.interleave import MODES, build_cases

    campaign = Campaign(seed=args.seed, shards=args.shards,
                        replicas=args.replicas,
                        read_quorum=args.read_quorum,
                        flaky_p=args.flaky_p)
    modes = MODES
    if args.modes:
        wanted = tuple(args.modes.split(","))
        if set(wanted) - set(MODES):
            print(f"unknown modes: {sorted(set(wanted) - set(MODES))}; "
                  f"choose from {list(MODES)}")
            return 2
        modes = wanted
    cases = build_cases(campaign.payloads)
    if args.cases:
        wanted_cases = set(args.cases.split(","))
        known = {c.name for c in cases}
        if wanted_cases - known:
            print(f"unknown cases: {sorted(wanted_cases - known)}; "
                  f"choose from {sorted(known)}")
            return 2
        cases = [c for c in cases if c.name in wanted_cases]
    scenarios = DEFAULT_SCENARIOS
    if args.scenarios:
        wanted_sc = set(args.scenarios.split(","))
        known = {s.name for s in DEFAULT_SCENARIOS}
        if wanted_sc - known:
            print(f"unknown scenarios: {sorted(wanted_sc - known)}; "
                  f"choose from {sorted(known)}")
            return 2
        scenarios = tuple(s for s in DEFAULT_SCENARIOS
                          if s.name in wanted_sc)
    report = campaign.run(modes, cases, scenarios)
    table = campaign_table(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out}")
    print(table)
    return 0 if report.ok else 1


def _cmd_shard_rebalance(args: argparse.Namespace) -> int:
    """Demo: change N or k online, under live writes, crash-safely."""
    from .crypto.provider import CryptoProvider
    from .errors import ClientCrashed
    from .fs.client import SharoesFilesystem
    from .fs.volume import SharoesVolume
    from .principals.groups import GroupKeyService
    from .principals.registry import PrincipalRegistry
    from .storage.faults import CrashingRebalancer
    from .storage.rebalance import FLIPPED, VERIFIED, Rebalancer
    from .storage.shards import ShardedServer
    from .tools.fsck import VolumeAuditor

    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    registry.create_group("eng", {"alice"}, key_bits=512)
    server = ShardedServer(shards=args.from_shards,
                           replicas=args.from_replicas)
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fs = SharoesFilesystem(volume, alice)
    fs.mount()
    fs.mkdir("/docs", mode=0o755)
    contents = {}
    for i in range(args.files):
        path = f"/docs/pre{i}.txt"
        contents[path] = f"before rebalance {i}".encode()
        fs.create_file(path, contents[path])
    while len(server.shards) < args.shards:
        server.add_shard()
    target = tuple(range(args.shards))
    print(f"rebalancing {args.from_shards} shards x k="
          f"{args.from_replicas} -> {args.shards} x k={args.replicas} "
          f"under live writes:")

    hook = CrashingRebalancer(crash_after=args.crash_at)
    reb = Rebalancer(server, keypair=alice.keypair, hook=hook)
    crashed = False
    try:
        plan = reb.propose(target, args.replicas)
        print(f"  plan epoch {plan.epoch} signed: "
              f"{len(plan.moves)} blobs to move")
        reb.execute(until=VERIFIED)
        path = "/docs/during-copy.txt"
        contents[path] = b"written while the plan was staging"
        fs.create_file(path, contents[path])
        reb.execute(until=FLIPPED)
        path = "/docs/during-flip.txt"
        contents[path] = b"written after the authority flip"
        fs.create_file(path, contents[path])
        reb.execute()
    except ClientCrashed as exc:
        crashed = True
        print(f"  CRASH: {exc}")
        print("  recovering from the stored plan:")
        reb2 = Rebalancer.recover(server, alice.keypair.public,
                                  keypair=alice.keypair)
        report = reb2.resume()
        print(f"  {report.summary()}")
    snap = server.shard_snapshot()
    print(f"  moved {snap['rebalance.moved']:.0f}, verified "
          f"{snap['rebalance.verified']:.0f}, dropped "
          f"{snap['rebalance.dropped']:.0f}; dual reads "
          f"{snap['rebalance.dual_reads']:.0f}, dual writes "
          f"{snap['rebalance.dual_writes']:.0f}"
          + (" (after crash + resume)" if crashed else ""))

    ring_ok = (server.ring.members == target
               and server.ring.replicas == args.replicas)
    print(f"ring now {server.ring.members} x k={server.ring.replicas}"
          f" ({'target reached' if ring_ok else 'NOT the target'})")
    repair = server.repair()
    if not repair.fully_replicated:
        repair = server.repair()
    print(f"anti-entropy: {repair.summary()}")
    bytes_ok = all(fs.read_file(path) == payload
                   for path, payload in contents.items())
    print(f"file contents: {'byte-identical' if bytes_ok else 'CORRUPT'}"
          f" ({len(contents)} files)")
    audit = VolumeAuditor(volume).audit()
    print(f"post-rebalance audit: {audit.summary()}")
    return 0 if (ring_ok and bytes_ok and audit.clean
                 and repair.fully_replicated
                 and not server.under_replicated()) else 1


def _cmd_rebalance_matrix(args: argparse.Namespace) -> int:
    from .tools.rebalancematrix import (VARIANTS, RebalanceMatrix,
                                        outcomes_table)

    variants = VARIANTS
    if args.variants:
        wanted = tuple(args.variants.split(","))
        if set(wanted) - set(VARIANTS):
            print(f"unknown variants: "
                  f"{sorted(set(wanted) - set(VARIANTS))}; "
                  f"choose from {list(VARIANTS)}")
            return 2
        variants = wanted
    matrix = RebalanceMatrix(seed=args.seed)
    outcomes = matrix.run(variants)
    table = outcomes_table(outcomes)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out}")
    print(table)
    return 0 if all(o.consistent for o in outcomes) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sharoes-repro",
        description="SHAROES (ICDE 2008) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("selftest", help="cryptographic self-test")
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser("demo", help="end-to-end sharing demo")
    p.set_defaults(func=_cmd_demo)

    workloads = ["postmark", "andrew", "createlist", "office",
                 "throughput"]
    impls = ["sharoes", "no-enc-md-d", "no-enc-md", "public", "pub-opt"]

    p = sub.add_parser("bench",
                       help="regenerate a paper figure, or run a named "
                            "workload and write BENCH_<name>.json")
    p.add_argument("figure", nargs="?",
                   choices=["fig9", "fig10", "fig11", "fig12", "fig13"])
    p.add_argument("--scale", type=float, default=0.2,
                   help="workload scale vs the paper (default 0.2; "
                        "1.0 = full paper parameters)")
    p.add_argument("--workload", choices=workloads,
                   help="run this workload with span tracing and write a "
                        "machine-readable BENCH_<workload>.json instead "
                        "of a figure")
    p.add_argument("--impl", choices=impls, default="sharoes",
                   help="implementation for --workload (default sharoes)")
    p.add_argument("--flaky-p", type=float, default=0.0,
                   help="inject transient SSP faults at this per-request "
                        "probability (with --workload; sharoes only)")
    p.add_argument("--flaky-seed", type=int, default=0,
                   help="seed for fault injection + retry jitter")
    p.add_argument("--shards", type=int, default=0,
                   help="run --workload over a sharded multi-SSP "
                        "backend of this many servers (sharoes only; "
                        "0 = the paper's single SSP)")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas per blob with --shards (default 2)")
    p.add_argument("--concurrency", type=int, default=0,
                   help="pipelined request window for --workload "
                        "(ClientConfig.concurrency; 0 = sequential; "
                        "also the window for --workload throughput)")
    p.add_argument("--out-dir", default="benchmarks/results",
                   help="directory for BENCH_*.json "
                        "(default benchmarks/results)")
    p.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                   help="diff two BENCH_*.json documents and exit "
                        "non-zero on perf regression (the CI gate)")
    p.add_argument("--wall-tol", type=float, default=0.02,
                   help="relative wall-clock slowdown tolerated by "
                        "--diff (default 0.02)")
    p.add_argument("--request-tol", type=float, default=0.0,
                   help="relative request-count growth tolerated by "
                        "--diff (default 0.0: any extra request fails)")
    p.add_argument("--phase-tol", type=float, default=None,
                   help="gate per-phase seconds too at this relative "
                        "tolerance (default: phases are report-only)")
    p.add_argument("--resolve-gate", action="append",
                   metavar="WORKLOAD=RATIO",
                   help="with --diff: demand NEW resolve seconds <= "
                        "RATIO x OLD for this workload (repeatable; "
                        "e.g. andrew=0.5 locks in the PR 7 mdcache "
                        "win; fails if either side lacks a trace "
                        "section)")
    p.add_argument("--overlap-gate", action="append",
                   metavar="WORKLOAD=RATIO",
                   help="with --diff: demand the NEW document's "
                        "WORKLOAD_concurrent entry finish in <= RATIO "
                        "x the plain WORKLOAD entry's wall seconds "
                        "(repeatable; e.g. postmark=0.75 locks in the "
                        "PR 10 pipelining win)")
    p.add_argument("--list", action="store_true",
                   help="print the committed per-PR benchmark "
                        "trajectory from --out-dir and exit")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("stats",
                       help="run a workload, dump the metrics registry "
                            "and per-op cost table")
    p.add_argument("--workload", choices=workloads, default="postmark")
    p.add_argument("--impl", choices=impls, default="sharoes")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--flaky-p", type=float, default=0.0,
                   help="inject transient SSP faults at this per-request "
                        "probability (sharoes only)")
    p.add_argument("--flaky-seed", type=int, default=0,
                   help="seed for fault injection + retry jitter")
    p.add_argument("--format", choices=["table", "prom"], default="table",
                   help="human table (default) or Prometheus text")
    p.add_argument("--mdcache", action="store_true",
                   help="mount the verified metadata cache for the run "
                        "(andrew only) so the client.mdcache.* section "
                        "is populated -- see docs/CACHING.md")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("trace",
                       help="run a workload, emit operation spans as "
                            "JSON-lines")
    p.add_argument("--workload", choices=workloads, default="office")
    p.add_argument("--impl", choices=impls, default="sharoes")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--out", help="write spans here instead of stdout")
    p.add_argument("--events",
                   help="also write a sampled structured-event JSONL "
                        "log here (one event per operation)")
    p.add_argument("--sample", type=float, default=1.0,
                   help="deterministic event sampling fraction for "
                        "--events (default 1.0 = keep everything)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("profile",
                       help="run a workload wire-traced and render the "
                            "stitched client+server span tree as a "
                            "profile")
    p.add_argument("--workload", choices=workloads, default="andrew")
    p.add_argument("--impl", choices=impls, default="sharoes")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--format",
                   choices=["folded", "speedscope", "top", "resolve"],
                   default="top",
                   help="folded stacks (flamegraph.pl), speedscope "
                        "JSON, top-N self-time table (default), or the "
                        "per-depth resolve-attribution report")
    p.add_argument("--top", type=int, default=15,
                   help="row count for --format top (default 15)")
    p.add_argument("--input",
                   help="render this spans JSONL file (from ``repro "
                        "trace --out``) instead of running a workload")
    p.add_argument("--out", help="write here instead of stdout "
                                 "(--format resolve with a .json path "
                                 "writes machine-readable JSON)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("inspect", help="dump the SSP's view of a volume")
    p.add_argument("--files", type=int, default=10)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("fsck",
                       help="audit a demo volume (with optional injected "
                            "corruption)")
    p.add_argument("--corrupt", action="store_true",
                   help="flip a bit in one data block first")
    p.add_argument("--stranded", action="store_true",
                   help="leave a dead client's pending intent behind")
    p.add_argument("--repair", action="store_true",
                   help="roll pending intents forward and reclaim "
                        "orphans (see docs/ROBUSTNESS.md)")
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser("crash-matrix",
                       help="kill a journaled client at every mutation "
                            "of every op and assert recovery")
    p.add_argument("--seed", type=int, default=0,
                   help="fixes file payloads (outcomes are "
                        "deterministic per seed)")
    p.add_argument("--recovery", choices=("mount", "fsck", "both"),
                   default="both")
    p.add_argument("--ops", help="comma-separated op subset")
    p.add_argument("--out", help="also write the outcomes table here")
    p.set_defaults(func=_cmd_crash_matrix)

    p = sub.add_parser("interleave",
                       help="sweep multi-client op interleavings "
                            "(pause/crash/zombie points) under leases "
                            "and assert no lost updates")
    p.add_argument("--seed", type=int, default=0,
                   help="fixes file payloads (outcomes are "
                        "deterministic per seed)")
    p.add_argument("--modes",
                   help="comma-separated subset of "
                        "sequential,preempt,crash,zombie (default all)")
    p.add_argument("--cases", help="comma-separated case subset")
    p.add_argument("--out", help="also write the outcomes table here")
    p.set_defaults(func=_cmd_interleave)

    p = sub.add_parser("shard-repair",
                       help="demo: lose one shard of a replicated "
                            "multi-SSP volume mid-workload, bring it "
                            "back, and anti-entropy-repair to full "
                            "replication")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--down", type=int, default=0,
                   help="which shard suffers the outage (default 0)")
    p.add_argument("--files", type=int, default=12,
                   help="files created across the outage (default 12)")
    p.set_defaults(func=_cmd_shard_repair)

    p = sub.add_parser("campaign",
                       help="composed adversarial campaign: the "
                            "interleaving matrix over a sharded "
                            "backend with outage/flaky/rollback/"
                            "tamper shards armed per cell")
    p.add_argument("--seed", type=int, default=0,
                   help="fixes payloads and fault draws (outcomes "
                        "deterministic per seed)")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--read-quorum", type=int, default=2)
    p.add_argument("--flaky-p", type=float, default=0.1,
                   help="per-request failure rate of the flaky shard")
    p.add_argument("--modes",
                   help="comma-separated subset of "
                        "sequential,preempt,crash,zombie (default all)")
    p.add_argument("--cases", help="comma-separated case subset")
    p.add_argument("--scenarios",
                   help="comma-separated subset of outage+flaky,"
                        "rollback,tamper,rebalance (default all)")
    p.add_argument("--out", help="also write the campaign table here")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("shard-rebalance",
                       help="demo: change the shard count or "
                            "replication factor online under live "
                            "writes (optionally crashing the "
                            "rebalancer and recovering)")
    p.add_argument("--shards", type=int, default=6,
                   help="target shard count (default 6)")
    p.add_argument("--replicas", type=int, default=3,
                   help="target replication factor (default 3)")
    p.add_argument("--from-shards", type=int, default=4,
                   help="initial shard count (default 4)")
    p.add_argument("--from-replicas", type=int, default=2,
                   help="initial replication factor (default 2)")
    p.add_argument("--files", type=int, default=12,
                   help="files created before the rebalance")
    p.add_argument("--crash-at", type=int, default=None,
                   help="kill the rebalancer at its k-th pipeline "
                        "action, then recover from the stored plan")
    p.set_defaults(func=_cmd_shard_rebalance)

    p = sub.add_parser("rebalance-matrix",
                       help="kill the rebalancer at every pipeline "
                            "action x {resume, repair, writes, "
                            "shard-down} recovery and assert "
                            "byte-identical recovery vs an unsharded "
                            "twin")
    p.add_argument("--seed", type=int, default=0,
                   help="fixes payloads (outcomes deterministic per "
                        "seed)")
    p.add_argument("--variants",
                   help="comma-separated subset of resume,repair,"
                        "writes,shard-down (default all)")
    p.add_argument("--out", help="also write the outcomes table here")
    p.set_defaults(func=_cmd_rebalance_matrix)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
