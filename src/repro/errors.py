"""Exception hierarchy for the SHAROES reproduction.

Every error raised by the library derives from :class:`SharoesError` so
applications can catch library failures with a single handler while still
being able to distinguish cryptographic failures (which usually indicate an
attack or a permission problem) from plain filesystem errors.
"""

from __future__ import annotations


class SharoesError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(SharoesError):
    """A cryptographic operation failed (bad key, bad padding, bad params)."""


class IntegrityError(CryptoError):
    """Signature or MAC verification failed.

    In the SHAROES threat model this means either data corruption or an
    active attack by the SSP or an unauthorized writer.
    """


class KeyAccessError(CryptoError):
    """A key field required for the attempted operation is not accessible.

    This is the cryptographic analogue of ``EACCES``: the CAP handed to the
    caller simply does not contain the key needed.
    """


class FilesystemError(SharoesError):
    """Base class for filesystem-level failures."""


class PermissionDenied(FilesystemError):
    """The caller's effective permissions do not allow the operation."""


class FileNotFound(FilesystemError):
    """Path component does not exist (``ENOENT``)."""


class FileExists(FilesystemError):
    """Target already exists (``EEXIST``)."""


class NotADirectory(FilesystemError):
    """A path component used as a directory is not one (``ENOTDIR``)."""


class IsADirectory(FilesystemError):
    """File operation attempted on a directory (``EISDIR``)."""


class DirectoryNotEmpty(FilesystemError):
    """rmdir on a non-empty directory (``ENOTEMPTY``)."""


class UnsupportedPermission(FilesystemError):
    """Permission combination the SHAROES design cannot express.

    The paper documents two: write-only / write-exec on objects encrypted
    with symmetric keys (a writer necessarily holds the decryption key), and
    exec-only on files (no storage service can run a program it cannot read).
    """


class StorageError(SharoesError):
    """The SSP failed to store or return a blob."""


class TransientStorageError(StorageError):
    """A retryable SSP failure: timeout, dropped connection, 5xx-style
    refusal.

    Distinct from plain :class:`StorageError` (protocol corruption,
    unsupported operation) and from :class:`BlobNotFound` (a definitive
    answer): only transient errors are eligible for the retry/backoff
    machinery in :mod:`repro.storage.resilient`.
    """


class CircuitOpenError(TransientStorageError):
    """The resilient transport's circuit breaker is open: the SSP has
    failed enough consecutive requests that the client fails fast
    instead of waiting out another deadline."""


class BlobNotFound(StorageError):
    """Requested blob id is not present at the SSP."""


class MigrationError(SharoesError):
    """The migration tool could not transition the local tree."""
