"""Exception hierarchy for the SHAROES reproduction.

Every error raised by the library derives from :class:`SharoesError` so
applications can catch library failures with a single handler while still
being able to distinguish cryptographic failures (which usually indicate an
attack or a permission problem) from plain filesystem errors.
"""

from __future__ import annotations


class SharoesError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(SharoesError):
    """A cryptographic operation failed (bad key, bad padding, bad params)."""


class IntegrityError(CryptoError):
    """Signature or MAC verification failed.

    In the SHAROES threat model this means either data corruption or an
    active attack by the SSP or an unauthorized writer.
    """


class KeyAccessError(CryptoError):
    """A key field required for the attempted operation is not accessible.

    This is the cryptographic analogue of ``EACCES``: the CAP handed to the
    caller simply does not contain the key needed.
    """


class FilesystemError(SharoesError):
    """Base class for filesystem-level failures."""


class PermissionDenied(FilesystemError):
    """The caller's effective permissions do not allow the operation."""


class FileNotFound(FilesystemError):
    """Path component does not exist (``ENOENT``)."""


class FileExists(FilesystemError):
    """Target already exists (``EEXIST``)."""


class NotADirectory(FilesystemError):
    """A path component used as a directory is not one (``ENOTDIR``)."""


class IsADirectory(FilesystemError):
    """File operation attempted on a directory (``EISDIR``)."""


class DirectoryNotEmpty(FilesystemError):
    """rmdir on a non-empty directory (``ENOTEMPTY``)."""


class UnsupportedPermission(FilesystemError):
    """Permission combination the SHAROES design cannot express.

    The paper documents two: write-only / write-exec on objects encrypted
    with symmetric keys (a writer necessarily holds the decryption key), and
    exec-only on files (no storage service can run a program it cannot read).
    """


class StorageError(SharoesError):
    """The SSP failed to store or return a blob."""


class TransientStorageError(StorageError):
    """A retryable SSP failure: timeout, dropped connection, 5xx-style
    refusal.

    Distinct from plain :class:`StorageError` (protocol corruption,
    unsupported operation) and from :class:`BlobNotFound` (a definitive
    answer): only transient errors are eligible for the retry/backoff
    machinery in :mod:`repro.storage.resilient`.
    """


class CircuitOpenError(TransientStorageError):
    """The resilient transport's circuit breaker is open: the SSP has
    failed enough consecutive requests that the client fails fast
    instead of waiting out another deadline."""


class PartialWriteError(StorageError):
    """A batched multi-blob upload failed part-way through.

    Carries exactly which blobs were already applied before the failure,
    which put failed, and which never left the client -- so callers (and
    the intent-journal recovery machinery) know the precise shape of the
    half-applied state instead of guessing from a bare
    :class:`StorageError`.
    """

    def __init__(self, message: str, applied: tuple = (),
                 failed=None, remaining: tuple = ()):
        super().__init__(message)
        #: blob ids the SSP accepted before the failure, in order.
        self.applied = tuple(applied)
        #: the blob id whose put raised.
        self.failed = failed
        #: blob ids never attempted.
        self.remaining = tuple(remaining)


class TransientPartialWriteError(PartialWriteError, TransientStorageError):
    """A partial batch write whose underlying cause is retryable.

    Subclasses both :class:`PartialWriteError` (carries the applied/
    failed/remaining split) and :class:`TransientStorageError` (the
    typed outcome every caller of a resilient client must handle), so
    existing ``except TransientStorageError`` handlers keep working.
    """


class ClientCrashed(SharoesError):
    """Simulated client process death (crash-point injection).

    Deliberately *not* a :class:`StorageError`: the SSP did nothing
    wrong, the client itself died mid-mutation.  The retry layer must
    never retry it and no filesystem handler may swallow it -- it
    propagates to the crash harness, which then re-mounts and asserts
    recovery.
    """


class CasConflictError(StorageError):
    """A ``put_if`` compare-and-swap lost the race.

    Carries the blob's *current* bytes so the caller can re-inspect and
    decide whether to retry at the protocol level.  Deliberately a plain
    :class:`StorageError` (terminal), never transient: blindly retrying
    a CAS would defeat its whole purpose.
    """

    def __init__(self, message: str, current: bytes | None = None):
        super().__init__(message)
        #: the blob's bytes at conflict time (``None`` = absent).
        self.current = current


class StaleEpochError(StorageError):
    """A fenced write carried an epoch older than the fence blob's.

    The SSP rejected the write mechanically (it reads only the plaintext
    epoch prefix of the lease blob, no crypto involved).  Terminal: the
    writer's lease was taken over, retrying cannot change it.
    """

    def __init__(self, message: str, current_epoch: int = 0):
        super().__init__(message)
        #: the fence blob's epoch at rejection time.
        self.current_epoch = current_epoch


class LeaseError(FilesystemError):
    """Base class for lease-coordination failures."""


class LeaseHeldError(LeaseError):
    """Another client holds an unexpired lease on the inode.

    The polite outcome: back off and retry after the holder releases or
    the lease expires.  Carries the holder and expiry for diagnostics.
    """

    def __init__(self, message: str, holder: str = "",
                 expires_at_s: float = 0.0):
        super().__init__(message)
        self.holder = holder
        self.expires_at_s = expires_at_s


class LeaseLostError(LeaseError):
    """This client's lease was taken over mid-flight (zombie fencing).

    Raised when a fenced commit is rejected because a successor advanced
    the fencing epoch.  The mutation is cleanly rolled back locally; any
    journaled intent was already rolled forward by the successor.
    """


class BlobNotFound(StorageError):
    """Requested blob id is not present at the SSP."""


class MigrationError(SharoesError):
    """The migration tool could not transition the local tree."""
