"""Composed adversarial campaign: every robustness defence at once.

``repro campaign`` runs the multi-client interleaving matrix
(:mod:`repro.tools.interleave` -- sequential / preempt / crash /
zombie schedules over journaled, leased clients) on top of a
:class:`~repro.storage.shards.ShardedServer` whose shards are
themselves under attack.  Every cell replays from a pristine volume
with a freshly armed *scenario*:

* ``outage+flaky`` -- one shard hard-down for the entire schedule plus
  a second shard failing a seeded fraction of its requests:
  replication masks the outage, the per-shard transport retries the
  flakes, and the matrix's crash/zombie injection rides on top;
* ``rollback`` -- one shard serves the first version it ever stored
  (a rolled-back replica): quorum reads outvote it, flag it suspect,
  and never serve its stale bytes;
* ``tamper`` -- one shard flips a bit in every data-plane payload it
  serves: outvoted and flagged exactly like rollback.  Lease blobs are
  exempt by construction: a tampered lease copy cannot *forge* (leases
  are signed) but can inflate the max-epoch fence into a denial of
  service, which quorum deliberately does not mask -- see
  THREAT_MODEL.md;
* ``rebalance`` -- every cell runs against a store mid-rebalance: a
  signed shrink plan is staged and verified (but never flipped) before
  the schedule starts, so reads and writes exercise dual placement
  throughout, and the final anti-entropy pass must arbitrate the
  abandoned plan (roll it back) before healing -- see
  :mod:`repro.storage.rebalance`.

The matrix's own multi-client contract must hold in every cell (no
lost updates, fsck clean with zero orphans, no fork detected), and
after the sweep a single ``clear_wrappers()`` + anti-entropy
:meth:`~repro.storage.shards.ShardedServer.repair` pass must restore
full replication -- :attr:`CampaignReport.ok` fails loudly otherwise.

Byzantine shards are armed one at a time on a healthy quorum: with
``replicas=3`` a divergent copy is outvoted only while two honest live
copies remain, so a rollback *plus* an overlapping outage degrades to
detection (the tie is counted and surfaced for repair; client-side
verification stays the backstop) rather than masking.

Deterministic per seed: payloads, flaky draws and schedule sweeps all
derive from ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.blobs import LEASE
from ..storage.faults import FlakyServer, RollbackServer, TamperingServer
from ..storage.shards import ShardedServer, ShardRepairReport
from .fsck import VolumeAuditor
from .interleave import (MODES, InterleaveCase, InterleaveMatrix,
                         InterleaveOutcome, build_cases)


@dataclass(frozen=True)
class Scenario:
    """Which shards are adversarial, and how, for one sweep."""

    name: str
    outage: int | None = None    # shard hard-down for the whole schedule
    flaky: int | None = None     # shard failing a seeded fraction
    rollback: int | None = None  # shard serving first-ever versions
    tamper: int | None = None    # shard bit-flipping data-plane reads
    #: ``(members, replicas)``: every cell runs with a rebalance plan
    #: to this ring staged-and-verified but unflipped, so the whole
    #: multi-client contract must hold under dual placement; the final
    #: campaign repair arbitrates the abandoned plan (rolls it back).
    rebalance: tuple | None = None


#: the default composed run (shard indices assume ``shards >= 4``).
DEFAULT_SCENARIOS = (
    Scenario("outage+flaky", outage=0, flaky=1),
    Scenario("rollback", rollback=2),
    Scenario("tamper", tamper=3),
    Scenario("rebalance", rebalance=((0, 1, 2), 3)),
)


@dataclass
class CampaignCell:
    """One interleaving cell run under one shard-adversity scenario."""

    scenario: str
    outcome: InterleaveOutcome

    @property
    def consistent(self) -> bool:
        return self.outcome.consistent


@dataclass
class CampaignReport:
    """The whole campaign: cells, final repair, post-repair audit."""

    seed: int
    shards: int
    replicas: int
    read_quorum: int
    cells: list = field(default_factory=list)
    repair: ShardRepairReport | None = None
    post_fsck_clean: bool = False
    post_orphans: int = -1
    shard_metrics: dict = field(default_factory=dict)

    @property
    def inconsistent(self) -> int:
        return sum(1 for c in self.cells if not c.consistent)

    @property
    def ok(self) -> bool:
        return (self.inconsistent == 0
                and self.repair is not None
                and self.repair.fully_replicated
                and self.post_fsck_clean and self.post_orphans == 0)


class Campaign(InterleaveMatrix):
    """The interleaving matrix over a sharded, adversarial backend."""

    def __init__(self, seed: int = 0, key_bits: int = 512,
                 shards: int = 4, replicas: int = 3,
                 read_quorum: int = 2, flaky_p: float = 0.1,
                 scenarios: tuple = DEFAULT_SCENARIOS):
        self.seed = seed
        self.flaky_p = flaky_p
        self.scenarios = tuple(scenarios)
        self._scenario: Scenario | None = None
        self._arm_seq = 0
        super().__init__(
            seed=seed, key_bits=key_bits,
            server_factory=lambda clock: ShardedServer(
                shards=shards, replicas=replicas,
                read_quorum=read_quorum, clock=clock))

    # -- per-cell adversity --------------------------------------------------

    def _restore(self) -> None:
        """Pristine volume *and* freshly armed scenario for every cell."""
        self.server.clear_wrappers()
        super()._restore()
        scenario = self._scenario
        if scenario is None:
            return
        self._arm_seq += 1
        if scenario.outage is not None:
            self.server.outage(scenario.outage, start_s=self.clock.now)
        if scenario.flaky is not None:
            seq = self._arm_seq
            self.server.wrap_shard(
                scenario.flaky,
                lambda backend: FlakyServer(
                    inner=backend, failure_rate=self.flaky_p,
                    seed=self.seed * 100_003 + seq))
        if scenario.rollback is not None:
            self.server.wrap_shard(
                scenario.rollback,
                lambda backend: RollbackServer(inner=backend))
        if scenario.tamper is not None:
            self.server.wrap_shard(
                scenario.tamper,
                lambda backend: TamperingServer(
                    inner=backend,
                    should_tamper=lambda b: b.kind != LEASE))
        if scenario.rebalance is not None:
            from ..storage.rebalance import VERIFIED, Rebalancer
            members, replicas = scenario.rebalance
            reb = Rebalancer(
                self.server,
                keypair=self.registry.user("alice").keypair)
            reb.propose(members, replicas)
            reb.execute(until=VERIFIED)

    # -- the sweep -----------------------------------------------------------

    def run(self, modes: tuple = MODES,
            cases: "list[InterleaveCase] | None" = None,
            scenarios: "tuple | None" = None) -> CampaignReport:
        report = CampaignReport(
            seed=self.seed, shards=len(self.server.shards),
            replicas=self.server.replicas,
            read_quorum=self.server.read_quorum)
        for scenario in scenarios or self.scenarios:
            self._scenario = scenario
            for case in cases or build_cases(self.payloads):
                for outcome in self.run_case(case, modes):
                    report.cells.append(
                        CampaignCell(scenario.name, outcome))
        # Heal: drop every adversary, then one anti-entropy pass (plus
        # one more if the first unlocked work) must restore placement.
        self._scenario = None
        self.server.clear_wrappers()
        repair = self.server.repair()
        if not repair.fully_replicated:
            repair = self.server.repair()
        report.repair = repair
        audit = VolumeAuditor(self.volume).audit()
        report.post_fsck_clean = audit.clean
        report.post_orphans = len(audit.orphaned_blobs)
        report.shard_metrics = self.server.shard_snapshot()
        return report


def campaign_table(report: CampaignReport) -> str:
    """Render the campaign outcome table (the CI artifact)."""
    lines = [
        f"composed campaign: seed={report.seed} shards={report.shards} "
        f"replicas={report.replicas} read_quorum={report.read_quorum}",
        f"{'scenario':<14} {'case':<22} {'mode':<10} {'k':>3} {'T':>3} "
        f"{'outcome':<18} {'first-error':<15} {'fsck':<5} {'vsl':<4}",
        "-" * 100]
    for cell in report.cells:
        o = cell.outcome
        lines.append(
            f"{cell.scenario:<14} {o.case:<22} {o.mode:<10} {o.point:>3} "
            f"{o.total_points:>3} {o.outcome:<18} "
            f"{(o.first_error or '-'):<15} "
            f"{'ok' if o.fsck_clean else 'DIRTY':<5} "
            f"{'ok' if o.vsl_ok else 'FORK':<4}")
    lines.append("-" * 100)
    m = report.shard_metrics
    if m:
        lines.append(
            f"shard health: quorum_reads={m['reads.quorum']:.0f} "
            f"failovers={m['reads.failover']:.0f} "
            f"divergent={m['divergent']:.0f} "
            f"outvoted={m['outvoted']:.0f} ties={m['ties']:.0f} "
            f"suspect_served={m['reads.suspect_served']:.0f}")
    if report.repair is not None:
        lines.append(f"final repair: {report.repair.summary()}")
    lines.append(
        f"post-repair fsck: "
        f"{'clean' if report.post_fsck_clean else 'DIRTY'}, "
        f"{report.post_orphans} orphans")
    lines.append(f"{len(report.cells)} cells, "
                 f"{report.inconsistent} inconsistent")
    return "\n".join(lines)
