"""Rebalance crash-point matrix (online-topology-change acceptance).

A twin-stack differential harness for the PR 9 rebalance pipeline
(:mod:`repro.storage.rebalance`): one SHAROES volume lives on a
:class:`~repro.storage.shards.ShardedServer`, its twin -- built from
the *same* principals with the crypto entropy stream pinned, so both
stacks mint identical keys, IVs and ciphertext -- on a single plain
:class:`~repro.storage.server.StorageServer`.  The sharded stack then
runs a grow + re-replicate plan (default: 4 shards / k=2 -> 6 shards /
k=3) and the matrix kills the rebalancer at **every** pipeline action
k = 1..T (per-blob copy / verify / drop steps and the flip / finish
transitions), crossing each crash point with four recovery variants:

* ``resume``     -- :meth:`Rebalancer.recover` re-attaches to the
  stored plan and drives it to DONE;
* ``repair``     -- plain anti-entropy (``server.repair()``) arbitrates
  the orphaned plan: resumed if it flipped, rolled back otherwise;
* ``writes``     -- clients keep writing *between* crash and recovery
  (the same ops applied to the twin), exercising dual-placement writes
  on a half-moved store;
* ``shard-down`` -- one old-ring shard is hard-down for the entire
  recovery, which must complete degraded and heal afterwards.

Every cell must converge to a store that is **byte-identical** to the
unsharded twin (blobs and decrypted tree), fsck-clean with zero
orphans, fully replicated on whichever ring ended up authoritative
(the target ring after a resume, either ring after repair arbitration
-- matching its resolved plan action), with no plan left adopted.
Deterministic per seed, like :mod:`repro.tools.crashmatrix`.
"""

from __future__ import annotations

import random
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Sequence

from ..crypto import rsa
from ..errors import ClientCrashed
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.permissions import DIRECTORY
from ..fs.volume import SharoesVolume
from ..principals.groups import GroupKeyService
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..sim.clock import SimClock
from ..storage.faults import CrashingRebalancer
from ..storage.rebalance import Rebalancer
from ..storage.server import StorageServer
from ..storage.shards import RingSpec, ShardedServer
from ..crypto.provider import CryptoProvider
from .fsck import VolumeAuditor

#: recovery variants crossed with every crash point.
VARIANTS = ("resume", "repair", "writes", "shard-down")

_BLOCK = 256


class _SeededEntropy:
    """Drop-in for the ``secrets`` functions the crypto stack uses."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def token_bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def randbelow(self, n: int) -> int:
        return self._rng.randrange(n)

    def randbits(self, k: int) -> int:
        return self._rng.getrandbits(k)


@contextmanager
def _pinned_entropy(seed: int):
    """Route ``secrets`` through a seeded stream (twin-run determinism).

    Both stacks replay the same op sequence under the same seed, so
    they draw identical keys/IVs in identical order and produce
    byte-identical ciphertext -- the property every cell's differential
    judgement rests on.
    """
    det = _SeededEntropy(seed)
    saved = (secrets.token_bytes, secrets.randbelow, secrets.randbits)
    secrets.token_bytes = det.token_bytes
    secrets.randbelow = det.randbelow
    secrets.randbits = det.randbits
    try:
        yield
    finally:
        secrets.token_bytes, secrets.randbelow, secrets.randbits = saved


def _visible_tree(fs: SharoesFilesystem, path: str = "/") -> dict:
    """Everything an application can see below ``path``."""
    out = {}
    for name in sorted(fs.readdir(path)):
        child = path.rstrip("/") + "/" + name
        stat = fs.getattr(child)
        entry = {"stat": stat}
        if stat.ftype == DIRECTORY:
            entry["children"] = _visible_tree(fs, child)
        else:
            entry["content"] = fs.read_file(child)
        out[name] = entry
    return out


@dataclass
class RebalanceOutcome:
    """One (crash point, recovery variant) cell's verdict."""

    variant: str
    point: int          # crash after this pipeline action (1-based)
    total_points: int
    step: str           # pipeline step the crash interrupted
    crashed: bool       # the injector fired (harness sanity)
    plan_action: str    # resumed | rolled_back | completed
    ring: str           # target | base | other
    ring_ok: bool       # ring matches the resolved plan action
    blobs_ok: bool      # ciphertext byte-identical to the twin
    tree_ok: bool       # decrypted tree identical to the twin
    fsck_clean: bool
    orphans: int
    replicated: bool    # final repair reports full replication
    plan_cleared: bool  # no plan left adopted on the router

    @property
    def consistent(self) -> bool:
        return (self.crashed and self.ring_ok and self.blobs_ok
                and self.tree_ok and self.fsck_clean
                and self.orphans == 0 and self.replicated
                and self.plan_cleared)


class RebalanceMatrix:
    """Twin-stack crash sweep over one topology transition."""

    def __init__(self, seed: int = 0, key_bits: int = 512,
                 shards: int = 4, replicas: int = 2, spares: int = 2,
                 target_replicas: int = 3, files: int = 5):
        self.seed = seed
        rng = random.Random(seed)
        sizes = [_BLOCK * (1 + rng.randrange(3)) + rng.randrange(64)
                 for _ in range(files)]
        self.payloads = [bytes(rng.randrange(256) for _ in range(size))
                         for size in sizes]
        with _pinned_entropy(seed * 7 + 1):
            self.registry = PrincipalRegistry()
            self.registry.add_user(User(
                user_id="alice",
                keypair=rsa.generate_keypair(key_bits)))
            self.registry.create_group("eng", {"alice"},
                                       key_bits=key_bits)
        self.keypair = self.registry.user("alice").keypair

        self.clock_s = SimClock()
        self.clock_p = SimClock()
        self.sharded = ShardedServer(shards=shards, replicas=replicas,
                                     clock=self.clock_s)
        for _ in range(spares):
            self.sharded.add_shard()
        self.plain = StorageServer(name="twin-ssp")
        self.volume_s = self._build(self.sharded, self.clock_s)
        self.volume_p = self._build(self.plain, self.clock_p)
        self.base_ring = self.sharded.ring
        self.target_ring = RingSpec(tuple(range(shards + spares)),
                                    target_replicas)

        self._base_sharded = self.sharded.snapshot_blobs()
        self._base_plain = self.plain.snapshot_blobs()
        if self._base_sharded != self._base_plain:
            raise AssertionError(
                "twin stacks diverged during setup -- the entropy "
                "pinning no longer covers every crypto draw")
        self._base_next_s = self.volume_s.allocator._next
        self._base_next_p = self.volume_p.allocator._next
        self._base_tree = _visible_tree(self._probe(self.volume_p))

    # -- setup ---------------------------------------------------------------

    def _build(self, server, clock) -> SharoesVolume:
        """Format + populate one stack (identical entropy stream each)."""
        with _pinned_entropy(self.seed * 7 + 2):
            volume = SharoesVolume(server, self.registry,
                                   block_size=_BLOCK, clock=clock)
            volume.format(root_owner="alice", root_group="eng")
            GroupKeyService(self.registry, server,
                            CryptoProvider()).publish_all()
            fs = self._client(volume)
            fs.mkdir("/d", mode=0o775)
            for i, payload in enumerate(self.payloads):
                fs.create_file(f"/d/f{i}", mode=0o664)
                fs.write_file(f"/d/f{i}", payload)
            fs.unmount()
        return volume

    def _client(self, volume: SharoesVolume) -> SharoesFilesystem:
        fs = SharoesFilesystem(
            volume, self.registry.user("alice"),
            config=ClientConfig(journal=True, lease=True,
                                cache_bytes=0))
        fs.mount()
        return fs

    def _probe(self, volume: SharoesVolume) -> SharoesFilesystem:
        fs = SharoesFilesystem(volume, self.registry.user("alice"),
                               config=ClientConfig(cache_bytes=0))
        fs.mount()
        return fs

    def _restore(self) -> None:
        """Both stacks back to the pristine base, old ring active."""
        self.sharded.clear_wrappers()
        self.sharded.set_ring(self.base_ring.members,
                              self.base_ring.replicas)
        self.sharded.restore_blobs(self._base_sharded)
        self.plain.restore_blobs(self._base_plain)
        self.volume_s.allocator._next = self._base_next_s
        self.volume_p.allocator._next = self._base_next_p
        self.clock_s.reset(0.0)
        self.clock_p.reset(0.0)

    # -- the sweep -----------------------------------------------------------

    def count_points(self) -> int:
        """Calibration run: T pipeline actions in a clean rebalance."""
        self._restore()
        counter = CrashingRebalancer(crash_after=None)
        reb = Rebalancer(self.sharded, keypair=self.keypair,
                         hook=counter)
        reb.propose(self.target_ring.members, self.target_ring.replicas)
        reb.execute()
        self._steps = [step for step, _ in counter.log]
        return counter.actions

    def _extra_writes(self, cell_seed: int) -> None:
        """The same mid-recovery ops on both stacks (pinned per cell)."""
        for volume in (self.volume_p, self.volume_s):
            with _pinned_entropy(cell_seed):
                fs = self._client(volume)
                fs.write_file("/d/f0", b"rewritten-" + bytes(
                    random.Random(cell_seed).randrange(256)
                    for _ in range(_BLOCK)))
                fs.create_file("/d/mid", mode=0o664)
                fs.write_file("/d/mid", b"written mid-rebalance")
                fs.unmount()

    def run_cell(self, point: int, variant: str,
                 total: int) -> RebalanceOutcome:
        self._restore()
        server = self.sharded
        hook = CrashingRebalancer(crash_after=point)
        reb = Rebalancer(server, keypair=self.keypair, hook=hook)
        crashed = False
        step = ""
        try:
            reb.propose(self.target_ring.members,
                        self.target_ring.replicas)
            reb.execute()
        except ClientCrashed:
            crashed = True
            step = hook.log[-1][0] if hook.log else ""

        plan_action = "completed"
        down = None
        if crashed:
            if variant == "shard-down":
                # An *old*-ring member (k=2 there tolerates one loss);
                # rotate the victim with the crash point.
                down = self.base_ring.members[
                    point % len(self.base_ring.members)]
                server.outage(down, start_s=self.clock_s.now)
            if variant == "writes":
                self._extra_writes(self.seed * 1_000_003 + point)
            if variant == "repair":
                report = server.repair()
                plan_action = report.plan_action or "completed"
            else:
                reb2 = Rebalancer.recover(server, self.keypair.public,
                                          keypair=self.keypair)
                reb2.resume()
                plan_action = "resumed"

        # Heal: drop the outage (if any), then anti-entropy to full
        # replication (twice -- a returning shard unlocks work).
        server.clear_wrappers()
        repair = server.repair()
        if not repair.fully_replicated:
            repair = server.repair()

        if server.ring == self.target_ring:
            ring = "target"
        elif server.ring == self.base_ring:
            ring = "base"
        else:
            ring = "other"
        ring_ok = (ring == "base" if plan_action == "rolled_back"
                   else ring == "target")
        blobs_ok = server.raw_blobs() == self.plain.raw_blobs()
        if variant == "writes" and crashed:
            tree_ok = (_visible_tree(self._probe(self.volume_s))
                       == _visible_tree(self._probe(self.volume_p)))
        else:
            tree_ok = (_visible_tree(self._probe(self.volume_s))
                       == self._base_tree)
        audit = VolumeAuditor(self.volume_s).audit()
        return RebalanceOutcome(
            variant=variant, point=point, total_points=total,
            step=step, crashed=crashed, plan_action=plan_action,
            ring=ring, ring_ok=ring_ok, blobs_ok=blobs_ok,
            tree_ok=tree_ok, fsck_clean=audit.clean,
            orphans=len(audit.orphaned_blobs),
            replicated=repair.fully_replicated,
            plan_cleared=server.plan is None)

    def run(self, variants: Sequence[str] = VARIANTS,
            points: Sequence[int] | None = None
            ) -> list[RebalanceOutcome]:
        total = self.count_points()
        ks = list(points) if points is not None else \
            list(range(1, total + 1))
        outcomes = []
        for variant in variants:
            for k in ks:
                outcomes.append(self.run_cell(k, variant, total))
        return outcomes


def outcomes_table(outcomes: list[RebalanceOutcome]) -> str:
    """Render the matrix outcome table (the CI artifact)."""
    lines = [
        f"{'variant':<12} {'k':>4} {'T':>4} {'step':<9} "
        f"{'plan':<12} {'ring':<7} {'blobs':<6} {'tree':<5} "
        f"{'fsck':<5} {'repl':<5} {'verdict':<12}",
        "-" * 92]
    for o in outcomes:
        lines.append(
            f"{o.variant:<12} {o.point:>4} {o.total_points:>4} "
            f"{o.step:<9} {o.plan_action:<12} {o.ring:<7} "
            f"{'ok' if o.blobs_ok else 'DIFF':<6} "
            f"{'ok' if o.tree_ok else 'DIFF':<5} "
            f"{'ok' if o.fsck_clean and not o.orphans else 'DIRTY':<5} "
            f"{'ok' if o.replicated else 'UNDER':<5} "
            f"{'consistent' if o.consistent else 'INCONSISTENT':<12}")
    lines.append("-" * 92)
    bad = sum(1 for o in outcomes if not o.consistent)
    lines.append(f"{len(outcomes)} cells, {bad} inconsistent")
    return "\n".join(lines)
