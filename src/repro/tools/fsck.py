"""Volume audit (fsck for the outsourced filesystem).

Runs inside the enterprise trust domain: mounts the volume as every
registered user, walks everything reachable, verifies every signature and
MAC along the way, and cross-references the SSP's blob census to find
unreferenced (orphaned) blobs.

What it detects:

* corrupted / tampered metadata, tables and data blocks (signature or
  MAC failures anywhere in any user's reachable tree);
* broken pointer structure (rows naming replicas that do not exist);
* SSP rollbacks of objects visited twice (via the client's freshness
  monitor);
* orphaned blobs -- storage the SSP bills for that no user can reach
  (e.g. left over from interrupted deletes);
* pending or forged write-ahead intents in per-user journals (clients
  that died mid-mutation; SSP-injected journal bytes).

With ``repair()`` it also *fixes* what it safely can: verified pending
intents are rolled forward (their staged blobs applied, the journal
truncated), unverifiable journals are quarantined, and orphaned blobs
are reclaimed -- see ``docs/ROBUSTNESS.md`` for the exact contract.

What it cannot detect, by design: a consistent, validly-signed *old*
state served uniformly on first contact (SUNDR's fork-consistency gap,
which the paper cites as complementary work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.provider import CryptoProvider
from ..errors import (BlobNotFound, FilesystemError, IntegrityError,
                      PermissionDenied, SharoesError, StorageError)
from ..fs import journal
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..storage.blobs import BlobId, journal_blob
from ..storage.server import StorageServer


@dataclass
class AuditReport:
    """Outcome of one volume audit."""

    users_mounted: int = 0
    objects_visited: int = 0
    files_verified: int = 0
    directories_verified: int = 0
    symlinks_verified: int = 0
    integrity_errors: list[str] = field(default_factory=list)
    structural_errors: list[str] = field(default_factory=list)
    orphaned_blobs: list[str] = field(default_factory=list)
    unreachable_users: list[str] = field(default_factory=list)
    #: verified write-ahead intents awaiting replay ("user op#seq").
    pending_intents: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.integrity_errors or self.structural_errors)

    def summary(self) -> str:
        status = "CLEAN" if self.clean else "ERRORS FOUND"
        return (f"fsck: {status} -- {self.objects_visited} objects via "
                f"{self.users_mounted} users "
                f"({self.files_verified} files, "
                f"{self.directories_verified} dirs, "
                f"{self.symlinks_verified} symlinks); "
                f"{len(self.integrity_errors)} integrity, "
                f"{len(self.structural_errors)} structural, "
                f"{len(self.orphaned_blobs)} orphaned blobs, "
                f"{len(self.pending_intents)} pending intents")


@dataclass
class RepairReport:
    """Outcome of one ``fsck --repair`` pass."""

    #: verified intents rolled forward ("user op#seq"), in apply order.
    completed_intents: list[str] = field(default_factory=list)
    #: journal blobs that failed signature/MAC verification and were
    #: quarantined (deleted) without replaying anything.
    rejected_journals: list[str] = field(default_factory=list)
    #: orphaned blobs reclaimed from the SSP.
    reclaimed_blobs: list[str] = field(default_factory=list)
    #: leases of rolled-forward clients broken ("inode N: advanced past
    #: epoch E (holder u)") -- the fencing epochs repair moved past.
    advanced_epochs: list[str] = field(default_factory=list)
    #: the post-repair audit, proving the volume converged.
    audit: AuditReport | None = None

    def summary(self) -> str:
        status = ("CLEAN" if self.audit is not None and self.audit.clean
                  and not self.audit.orphaned_blobs else "NOT CONVERGED")
        return (f"fsck --repair: {status} -- "
                f"{len(self.completed_intents)} intents completed, "
                f"{len(self.rejected_journals)} journals rejected, "
                f"{len(self.reclaimed_blobs)} blobs reclaimed, "
                f"{len(self.advanced_epochs)} lease epochs advanced")


class _RecordingServer:
    """Pass-through server proxy recording every blob id touched."""

    def __init__(self, inner: StorageServer):
        self._inner = inner
        self.touched: set[BlobId] = set()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def get(self, blob_id: BlobId) -> bytes:
        self.touched.add(blob_id)
        return self._inner.get(blob_id)

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        raise SharoesError("fsck is read-only; write attempted")

    def delete(self, blob_id: BlobId) -> None:
        raise SharoesError("fsck is read-only; delete attempted")

    def exists(self, blob_id: BlobId) -> bool:
        self.touched.add(blob_id)
        return self._inner.exists(blob_id)


class VolumeAuditor:
    """Walks and verifies a SHAROES volume as every registered user."""

    def __init__(self, volume: SharoesVolume):
        self.volume = volume

    def audit(self, check_orphans: bool = True) -> AuditReport:
        report = AuditReport()
        recorder = _RecordingServer(self.volume.server)
        shadow = _ShadowVolume(self.volume, recorder)
        visited_inodes: set[int] = set()

        for user in self.volume.registry.users():
            fs = SharoesFilesystem(shadow, user,
                                   config=ClientConfig())
            try:
                fs.mount()
            except Exception:
                report.unreachable_users.append(user.user_id)
                continue
            report.users_mounted += 1
            self._walk(fs, "/", report, visited_inodes)

        report.objects_visited = len(visited_inodes)
        self._check_journals(report)
        self._check_leases(report)
        if check_orphans:
            self._find_orphans(recorder, report, visited_inodes)
        return report

    # -- journals ----------------------------------------------------------------

    def _check_journals(self, report: AuditReport) -> None:
        """Verify every user's write-ahead journal (see fs/journal.py).

        fsck runs inside the enterprise trust domain, so it holds the
        registry's private keys and can open (and later replay) any
        user's journal.  A journal that fails verification is an
        integrity error: either corruption or SSP-forged intents.
        """
        for user in self.volume.registry.users():
            try:
                blob = self.volume.server.get(journal_blob(user.user_id))
            except (BlobNotFound, StorageError):
                continue
            try:
                records = journal.open_journal(
                    CryptoProvider(getattr(self.volume, "engine",
                                           "stream")),
                    user, blob)
            except IntegrityError as exc:
                report.integrity_errors.append(
                    f"journal[{user.user_id}]: {exc}")
                continue
            for record in records:
                report.pending_intents.append(
                    f"{user.user_id} {record.op}#{record.seq}")

    # -- leases ------------------------------------------------------------------

    def _lease_blobs(self):
        """Every (blob id, raw bytes) lease pair in the SSP census."""
        from ..storage.blobs import LEASE
        try:
            all_ids = list(self.volume.server.raw_blobs())
        except StorageError:
            return
        for blob_id in sorted(all_ids):
            if blob_id.kind != LEASE:
                continue
            try:
                yield blob_id, self.volume.server.get(blob_id)
            except (BlobNotFound, StorageError):
                continue

    def _check_leases(self, report: AuditReport) -> None:
        """Verify every lease blob: structure, signature, known holder.

        The SSP cannot forge a lease (no user private key), so a bad
        signature here is tampering; an unknown holder is either
        tampering or a stale registry.
        """
        from ..fs.lease import LeaseRecord
        for blob_id, raw in self._lease_blobs():
            try:
                record = LeaseRecord.from_bytes(raw)
                record.verify(self.volume.registry.directory)
            except (IntegrityError, SharoesError) as exc:
                report.integrity_errors.append(f"{blob_id}: {exc}")
                continue
            if record.inode != blob_id.inode:
                report.integrity_errors.append(
                    f"{blob_id}: signed inode {record.inode} "
                    f"contradicts blob location")

    def _break_leases(self, holder: str, report: RepairReport) -> None:
        """Release a rolled-forward client's unreleased leases.

        Shares the takeover contract (journal first, epoch second): only
        called after ``roll_forward`` drained the holder's journal, it
        writes a *released* successor record under the holder's escrowed
        key so live clients can re-acquire without waiting out the
        expiry.  Losing the CAS is benign -- someone already advanced
        the chain past the epoch we were about to break.
        """
        from ..fs.lease import LeaseRecord, break_record
        from ..errors import CasConflictError
        for blob_id, raw in self._lease_blobs():
            try:
                record = LeaseRecord.from_bytes(raw)
            except IntegrityError:
                continue  # audit reports it; nothing safe to advance
            if record.holder != holder or record.released:
                continue
            broken = break_record(
                record, self.volume.registry.user(holder))
            try:
                self.volume.server.put_if(blob_id, broken.to_bytes(),
                                          expected=raw)
            except CasConflictError:
                continue
            report.advanced_epochs.append(
                f"inode {record.inode}: advanced past epoch "
                f"{record.epoch} (holder {holder})")

    # -- repair ------------------------------------------------------------------

    def repair(self) -> RepairReport:
        """Converge the volume: roll intents forward, reclaim orphans.

        Three passes, in an order that matters:

        1. **Complete stale intents.**  Every verified pending intent is
           rolled *forward* -- its staged calls carry the exact sealed
           payloads the dead client would have sent, and replay is
           idempotent, so completion is always safe.  (Roll-*back* is
           not offered: an intent found in the journal proves the
           journal put succeeded, i.e. the client was past the point of
           no return; undoing blobs it may have applied could clobber a
           concurrent writer.)  A journal that fails verification is
           quarantined unreplayed: its intents are untrusted bytes.
           Rolled-forward clients' unreleased leases are then broken
           (released record, epoch advanced) so live clients need not
           wait out the expiry -- the lease-takeover contract, journal
           first, epoch second.
        2. **Reclaim orphans.**  With intents completed, anything still
           unreachable really is garbage from interrupted deletes (or
           rolled-back creates); it is deleted from the SSP.
        3. **Re-audit** to prove convergence; the result rides on the
           returned report.
        """
        report = RepairReport()
        server = self.volume.server
        provider = CryptoProvider(getattr(self.volume, "engine",
                                          "stream"))
        for user in self.volume.registry.users():
            jid = journal_blob(user.user_id)
            try:
                # Same verified roll-forward path as lease takeover
                # (fs/journal.roll_forward): verify, replay staged
                # calls in order, truncate.
                records = journal.roll_forward(server, provider, user)
            except IntegrityError:
                server.delete(jid)
                report.rejected_journals.append(user.user_id)
                continue
            except StorageError:
                continue
            if not records:
                continue
            for record in records:
                report.completed_intents.append(
                    f"{user.user_id} {record.op}#{record.seq}")
            self._break_leases(user.user_id, report)
        audit = self.audit()
        for name in audit.orphaned_blobs:
            kind, inode, selector = name.split("/", 2)
            server.delete(BlobId(kind, int(inode), selector))
            report.reclaimed_blobs.append(name)
        if report.reclaimed_blobs:
            audit = self.audit()
        report.audit = audit
        return report

    # -- traversal --------------------------------------------------------------

    def _walk(self, fs: SharoesFilesystem, path: str,
              report: AuditReport, visited: set[int]) -> None:
        try:
            stat = fs.lstat(path)
        except (PermissionDenied, FilesystemError):
            return
        except IntegrityError as exc:
            report.integrity_errors.append(f"{path}: {exc}")
            return
        first_visit = stat.inode not in visited
        visited.add(stat.inode)

        if stat.ftype == "dir":
            try:
                names = fs.readdir(path)
            except PermissionDenied:
                return  # legitimately unlistable for this user
            except IntegrityError as exc:
                report.integrity_errors.append(f"{path}: {exc}")
                return
            if first_visit:
                report.directories_verified += 1
            for name in names:
                child = path.rstrip("/") + "/" + name
                try:
                    self._walk(fs, child, report, visited)
                except IntegrityError as exc:
                    report.integrity_errors.append(f"{child}: {exc}")
                except SharoesError as exc:
                    report.structural_errors.append(f"{child}: {exc}")
        elif stat.ftype == "symlink":
            if first_visit:
                report.symlinks_verified += 1
            try:
                fs.readlink(path)
            except IntegrityError as exc:
                report.integrity_errors.append(f"{path}: {exc}")
        else:
            try:
                fs.read_file(path)
                if first_visit:
                    report.files_verified += 1
            except PermissionDenied:
                pass  # this user cannot read it; another may
            except IntegrityError as exc:
                report.integrity_errors.append(f"{path}: {exc}")

    # -- orphan census -------------------------------------------------------------

    def _find_orphans(self, recorder: _RecordingServer,
                      report: AuditReport,
                      visited_inodes: set[int]) -> None:
        """Blobs belonging to no reachable inode.

        Reachability is inode-granular: an exec-only directory's hidden
        table views and empty-class metadata replicas are legitimately
        never *read* by a listing walk, but their inode is known.
        """
        try:
            all_ids = set(self.volume.server.raw_blobs())
        except StorageError:
            return  # remote SSPs expose no census
        for blob_id in sorted(all_ids - recorder.touched):
            # Lockboxes, superblocks and group keys are only read by
            # their single addressee on specific paths; journals are
            # per-user recovery state audited separately; lease chains
            # and version statements are coordination infrastructure
            # that outlives any object (their own audits are
            # _check_leases and the clients' fork checks).  Unread is
            # fine for all of them.
            if blob_id.kind in ("super", "groupkey", "lockbox",
                                "journal", "lease", "vsl"):
                continue
            if blob_id.inode in visited_inodes:
                continue
            report.orphaned_blobs.append(str(blob_id))


class _ShadowVolume:
    """The auditor's volume handle with the recording (read-only) server.

    Delegates everything except the server to the real volume, so scheme,
    allocator and registry stay shared.
    """

    def __init__(self, volume: SharoesVolume, server: _RecordingServer):
        self._volume = volume
        self.server = server

    def __getattr__(self, name):
        return getattr(self._volume, name)
