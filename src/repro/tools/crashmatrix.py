"""Crash-point matrix: kill a client at every mutation of every op.

For each filesystem mutation (create_file, mkdir, unlink, rmdir, rename,
link, symlink, pwrite/truncate writeback) the harness first counts how
many SSP mutations (puts + deletes) the journaled op issues, then sweeps
crash point k = 1..T: restore the volume to the pre-op checkpoint, run
the op against a :class:`~repro.storage.resilient.CrashingServer` that
dies at the k-th mutation, recover (a fresh client's ``mount()`` or
``fsck --repair``), and assert the crash-consistency contract:

* the op is **fully applied** or **fully rolled back** -- never half;
* the post-recovery volume is fsck-clean;
* no orphaned blobs remain.

With the write-ahead journal the expected shape is exact: the first
mutation of any journaled op is the intent append, so k = 1 rolls back
(nothing of the op ever reached the SSP) and every k >= 2 replays to
fully applied.  The harness asserts outcomes, it does not assume them.

Deterministic per seed: the seed fixes every file payload, and mutation
counts are structural (blob *counts*, not blob bytes), so CI reruns
with the same seed produce identical tables.  (RSA keygen draws from
``secrets`` -- key material varies, outcomes do not.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..crypto import rsa
from ..crypto.provider import CryptoProvider
from ..errors import ClientCrashed, FileNotFound, FilesystemError
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..principals.groups import GroupKeyService
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..storage.resilient import CrashingServer
from ..storage.server import StorageServer
from .fsck import VolumeAuditor

#: recovery modes the matrix can exercise.
MOUNT = "mount"
FSCK = "fsck"

_BLOCK = 256  # small blocks so writeback ops span several puts


@dataclass(frozen=True)
class CrashCase:
    """One mutation under test, with its oracle predicates."""

    name: str
    prepare: Callable[[SharoesFilesystem], None]
    run: Callable[[SharoesFilesystem], None]
    applied: Callable[[SharoesFilesystem], bool]
    rolled_back: Callable[[SharoesFilesystem], bool]


@dataclass
class CrashOutcome:
    """One cell of the matrix: op x crash point under one recovery."""

    op: str
    crash_point: int
    total_points: int
    recovery: str  # "mount" | "fsck"
    outcome: str  # "applied" | "rolled_back" | the failure description
    fsck_clean: bool
    orphans: int

    @property
    def consistent(self) -> bool:
        return (self.outcome in ("applied", "rolled_back")
                and self.fsck_clean and self.orphans == 0)


def _exists(fs: SharoesFilesystem, path: str) -> bool:
    try:
        fs.lstat(path)
        return True
    except (FileNotFound, FilesystemError):
        return False


def _holds(pred: Callable[[SharoesFilesystem], bool],
           fs: SharoesFilesystem) -> bool:
    """Evaluate an oracle; a missing path means 'predicate false'.

    Integrity errors are deliberately NOT caught -- a signature failure
    after recovery is a real bug, never a benign 'other state'.
    """
    try:
        return bool(pred(fs))
    except FilesystemError:
        return False


def build_cases(data: bytes | None = None,
                new: bytes | None = None) -> list[CrashCase]:
    """The op suite: every mutation family the client exposes.

    ``data`` (initial 3-block file content) and ``new`` (the pwrite
    payload) default to fixed patterns; :class:`CrashMatrix` derives
    them from its seed.
    """
    _DATA = data if data is not None else bytes(range(256)) * 3
    _NEW = new if new is not None else b"\xAA" * 700

    def pwrite_run(fs: SharoesFilesystem) -> None:
        with fs.open("/d/f", "rw") as handle:
            handle.pwrite(_NEW, 100)

    def truncate_run(fs: SharoesFilesystem) -> None:
        with fs.open("/d/f", "rw") as handle:
            handle.truncate(60)

    pwritten = (_DATA[:100] + _NEW
                + _DATA[100 + len(_NEW):]).ljust(len(_DATA), b"\x00")
    return [
        CrashCase(
            "create_file",
            prepare=lambda fs: None,
            run=lambda fs: fs.create_file("/d/new", _DATA),
            applied=lambda fs: (_exists(fs, "/d/new")
                                and fs.read_file("/d/new") == _DATA),
            rolled_back=lambda fs: not _exists(fs, "/d/new")),
        CrashCase(
            "mkdir",
            prepare=lambda fs: None,
            run=lambda fs: fs.mkdir("/d/sub"),
            applied=lambda fs: (_exists(fs, "/d/sub")
                                and fs.readdir("/d/sub") == []),
            rolled_back=lambda fs: not _exists(fs, "/d/sub")),
        CrashCase(
            "unlink",
            prepare=lambda fs: fs.create_file("/d/victim", _DATA),
            run=lambda fs: fs.unlink("/d/victim"),
            applied=lambda fs: not _exists(fs, "/d/victim"),
            rolled_back=lambda fs: (
                _exists(fs, "/d/victim")
                and fs.read_file("/d/victim") == _DATA)),
        CrashCase(
            "rmdir",
            prepare=lambda fs: fs.mkdir("/d/doomed"),
            run=lambda fs: fs.rmdir("/d/doomed"),
            applied=lambda fs: not _exists(fs, "/d/doomed"),
            rolled_back=lambda fs: _exists(fs, "/d/doomed")),
        CrashCase(
            "rename",
            prepare=lambda fs: fs.create_file("/d/old", _DATA),
            run=lambda fs: fs.rename("/d/old", "/d/moved"),
            applied=lambda fs: (not _exists(fs, "/d/old")
                                and fs.read_file("/d/moved") == _DATA),
            rolled_back=lambda fs: (not _exists(fs, "/d/moved")
                                    and fs.read_file("/d/old") == _DATA)),
        CrashCase(
            "link",
            prepare=lambda fs: fs.create_file("/d/orig", _DATA),
            run=lambda fs: fs.link("/d/orig", "/d/alias"),
            applied=lambda fs: (fs.read_file("/d/alias") == _DATA
                                and fs.lstat("/d/orig").nlink == 2),
            rolled_back=lambda fs: (not _exists(fs, "/d/alias")
                                    and fs.lstat("/d/orig").nlink == 1)),
        CrashCase(
            "symlink",
            prepare=lambda fs: fs.create_file("/d/target", _DATA),
            run=lambda fs: fs.symlink("/d/target", "/d/ln"),
            applied=lambda fs: (fs.readlink("/d/ln") == "/d/target"
                                and fs.read_file("/d/ln") == _DATA),
            rolled_back=lambda fs: not _exists(fs, "/d/ln")),
        CrashCase(
            "writeback-pwrite",
            prepare=lambda fs: fs.create_file("/d/f", _DATA),
            run=pwrite_run,
            applied=lambda fs: fs.read_file("/d/f") == pwritten,
            rolled_back=lambda fs: fs.read_file("/d/f") == _DATA),
        CrashCase(
            "writeback-truncate",
            prepare=lambda fs: fs.create_file("/d/f", _DATA),
            run=truncate_run,
            applied=lambda fs: fs.read_file("/d/f") == _DATA[:60],
            rolled_back=lambda fs: fs.read_file("/d/f") == _DATA),
    ]


class CrashMatrix:
    """A tiny enterprise wired for snapshot/restore crash sweeps."""

    def __init__(self, seed: int = 0, key_bits: int = 512):
        rng = random.Random(seed)
        self.data = bytes(rng.randrange(256) for _ in range(3 * _BLOCK))
        self.new = bytes(rng.randrange(256) for _ in range(700))
        self.registry = PrincipalRegistry()
        for name in ("alice", "bob"):
            self.registry.add_user(User(
                user_id=name,
                keypair=rsa.generate_keypair(key_bits)))
        self.registry.create_group("eng", {"alice", "bob"},
                                   key_bits=key_bits)
        self.server = StorageServer()
        self.volume = SharoesVolume(self.server, self.registry,
                                    block_size=_BLOCK)
        self.volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(self.registry, self.server,
                        CryptoProvider()).publish_all()
        base = self.client()
        base.mkdir("/d")
        self._base_blobs = self.server.snapshot_blobs()
        self._base_next = self.volume.allocator._next

    def client(self, server=None) -> SharoesFilesystem:
        fs = SharoesFilesystem(
            self.volume, self.registry.user("alice"),
            config=ClientConfig(journal=True, cache_bytes=0),
            server=server)
        fs.mount()
        return fs

    def _restore(self, blobs, next_inode: int) -> None:
        self.server.restore_blobs(blobs)
        self.volume.allocator._next = next_inode

    def _audit(self) -> tuple[bool, int]:
        report = VolumeAuditor(self.volume).audit()
        return report.clean, len(report.orphaned_blobs)

    def run_case(self, case: CrashCase,
                 recovery: str = MOUNT) -> list[CrashOutcome]:
        """Sweep every crash point of one op under one recovery mode."""
        self._restore(self._base_blobs, self._base_next)
        case.prepare(self.client())
        checkpoint = self.server.snapshot_blobs()
        next_inode = self.volume.allocator._next

        # Counting run: discover T, and prove the op lands when nothing
        # crashes (the oracle itself is exercised here).
        counter = CrashingServer(self.server)
        case.run(self.client(server=counter))
        total = counter.mutations
        if not _holds(case.applied, self.client()):
            raise AssertionError(f"{case.name}: oracle rejects the "
                                 f"crash-free run")

        outcomes = []
        for k in range(1, total + 1):
            self._restore(checkpoint, next_inode)
            crasher = CrashingServer(self.server, crash_after=k)
            try:
                case.run(self.client(server=crasher))
                raise AssertionError(
                    f"{case.name}: no crash at k={k} (T={total})")
            except ClientCrashed:
                pass
            if recovery == FSCK:
                VolumeAuditor(self.volume).repair()
            probe = self.client()  # mount() replays pending intents
            applied = _holds(case.applied, probe)
            rolled_back = (not applied) and _holds(case.rolled_back,
                                                   probe)
            clean, orphans = self._audit()
            outcome = ("applied" if applied
                       else "rolled_back" if rolled_back
                       else "INCONSISTENT")
            outcomes.append(CrashOutcome(
                op=case.name, crash_point=k, total_points=total,
                recovery=recovery, outcome=outcome,
                fsck_clean=clean, orphans=orphans))
        return outcomes

    def run(self, recoveries: tuple[str, ...] = (MOUNT, FSCK),
            cases: list[CrashCase] | None = None) -> list[CrashOutcome]:
        results = []
        for case in cases or build_cases(self.data, self.new):
            for recovery in recoveries:
                results.extend(self.run_case(case, recovery))
        return results


def outcomes_table(outcomes: list[CrashOutcome]) -> str:
    """Render the recovery-outcomes table (the CI artifact)."""
    lines = [f"{'op':<20} {'recovery':<8} {'k':>3} {'T':>3} "
             f"{'outcome':<12} {'fsck':<5} {'orphans':>7}",
             "-" * 63]
    for o in outcomes:
        lines.append(
            f"{o.op:<20} {o.recovery:<8} {o.crash_point:>3} "
            f"{o.total_points:>3} {o.outcome:<12} "
            f"{'ok' if o.fsck_clean else 'DIRTY':<5} {o.orphans:>7}")
    bad = sum(1 for o in outcomes if not o.consistent)
    lines.append("-" * 63)
    lines.append(f"{len(outcomes)} crash points, "
                 f"{bad} inconsistent")
    return "\n".join(lines)
