"""Operational tooling: volume audit (fsck) and storage census."""

from .fsck import AuditReport, VolumeAuditor

__all__ = ["VolumeAuditor", "AuditReport"]
