"""Concurrency interleaving matrix (multi-client safety acceptance).

Two or three leasing clients share one volume; for every op pair the
harness sweeps deterministic interleavings of the *first* client's SSP
mutation sequence:

* **sequential** -- the first op runs to completion, then the others
  (the baseline; also the counting run that discovers T);
* **preempt k = 1..T** -- the first client pauses just before its k-th
  SSP mutation, the other clients run their ops to completion (an op
  blocked by the paused client's lease is *deferred* and retried after
  it resumes), then the first client resumes;
* **crash k = 1..T** -- the first client dies at its k-th mutation, the
  shared clock advances past lease expiry, and the others run: their
  write-points take over the dead client's leases, rolling its journal
  forward first, so the interrupted op lands fully applied or fully
  rolled back -- never half;
* **zombie k = 1..T** -- the first client pauses at its k-th mutation,
  the clock jumps past expiry and the others run (taking its leases
  over), then the first client *resumes*: its remaining fenced writes
  must be rejected mechanically (:class:`~repro.errors.LeaseLostError`)
  or, if it had not yet written anything fenced, re-serialize cleanly.

After every schedule the harness asserts the multi-client contract:

* **no lost updates** -- every op's effect is present (the first op may
  instead be fully rolled back in crash/zombie cells);
* the volume is **fsck-clean with zero orphans**;
* surviving clients publish and cross-check **version statements**
  without :class:`~repro.fs.consistency.ForkDetected`.

Deterministic per seed, like :mod:`repro.tools.crashmatrix`: payloads
derive from the seed and mutation counts are structural.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..crypto import rsa
from ..crypto.provider import CryptoProvider
from ..errors import (ClientCrashed, FileNotFound, FilesystemError,
                      LeaseHeldError, LeaseLostError)
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.consistency import ForkDetected
from ..fs.volume import SharoesVolume
from ..principals.groups import GroupKeyService
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..sim.clock import SimClock
from ..storage.blobs import BlobId
from ..storage.resilient import CrashingServer, ServerWrapper
from ..storage.server import StorageServer
from .fsck import VolumeAuditor

#: interleaving modes the matrix sweeps.
SEQUENTIAL = "sequential"
PREEMPT = "preempt"
CRASH = "crash"
ZOMBIE = "zombie"

MODES = (SEQUENTIAL, PREEMPT, CRASH, ZOMBIE)

_BLOCK = 256
_LEASE_S = 5.0
#: rounds of deferred-op retries before declaring a schedule stuck.
_DRAIN_ROUNDS = 5


class PauseServer(ServerWrapper):
    """Runs ``hook()`` once, just before the k-th SSP mutation.

    The synchronous stand-in for a context switch: the wrapped client
    is "descheduled" at an exact point in its wire sequence while other
    clients run.  Counts the same mutation set as
    :class:`~repro.storage.resilient.CrashingServer` (puts, deletes,
    CAS and fenced variants), so crash and preempt sweeps share k.
    """

    def __init__(self, inner: StorageServer,
                 pause_at: int | None = None,
                 hook: Callable[[], None] | None = None):
        super().__init__(inner, name=f"pausing({inner.name})")
        self.pause_at = pause_at
        self.hook = hook
        self.mutations = 0
        self._fired = False

    def _mutation(self) -> None:
        self.mutations += 1
        if (self.hook is not None and not self._fired
                and self.pause_at is not None
                and self.mutations >= self.pause_at):
            self._fired = True
            self.hook()

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._mutation()
        self.inner.put(blob_id, payload)

    def delete(self, blob_id: BlobId) -> None:
        self._mutation()
        self.inner.delete(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._mutation()
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.delete_fenced(blob_id, fence, epoch)


@dataclass(frozen=True)
class InterleaveCase:
    """One schedule family: a first op raced against rider ops."""

    name: str
    #: state built before the schedule (run by a plain client).
    prepare: Callable[[SharoesFilesystem], None]
    #: the op whose mutation sequence is swept ("alice").
    first: Callable[[SharoesFilesystem], None]
    #: (user id, op) pairs injected at the interleaving point, in order.
    others: tuple
    #: every op's effect is present.
    all_applied: Callable[[SharoesFilesystem], bool]
    #: the first op is fully absent, every rider applied.
    first_rolled_back: Callable[[SharoesFilesystem], bool]


@dataclass
class InterleaveOutcome:
    """One cell: case x mode x interleaving point."""

    case: str
    mode: str
    point: int  # 0 for sequential
    total_points: int
    outcome: str  # "all_applied" | "first_rolled_back" | failure text
    first_error: str  # "" | "LeaseLostError" | "ClientCrashed" | ...
    deferred: int  # rider attempts that had to wait for a lease
    fsck_clean: bool
    orphans: int
    vsl_ok: bool

    @property
    def consistent(self) -> bool:
        return (self.outcome in ("all_applied", "first_rolled_back")
                and self.fsck_clean and self.orphans == 0
                and self.vsl_ok)


def _exists(fs: SharoesFilesystem, path: str) -> bool:
    try:
        fs.lstat(path)
        return True
    except (FileNotFound, FilesystemError):
        return False


def _holds(pred: Callable[[SharoesFilesystem], bool],
           fs: SharoesFilesystem) -> bool:
    try:
        return bool(pred(fs))
    except FilesystemError:
        return False


def build_cases(payloads: dict[str, bytes]) -> list[InterleaveCase]:
    """The schedule families.

    Every case contends the shared directory ``/d`` -- its table is the
    read-modify-write that loses updates without coordination.
    ``payloads`` maps logical names to file contents (seed-derived).
    """
    pa, pb, pc, px = (payloads["a"], payloads["b"], payloads["c"],
                      payloads["x"])
    return [
        InterleaveCase(
            "create-create",
            prepare=lambda fs: None,
            first=lambda fs: fs.create_file("/d/a", pa),
            others=(("bob", lambda fs: fs.create_file("/d/b", pb)),),
            all_applied=lambda fs: (fs.read_file("/d/a") == pa
                                    and fs.read_file("/d/b") == pb),
            first_rolled_back=lambda fs: (not _exists(fs, "/d/a")
                                          and fs.read_file("/d/b") == pb)),
        InterleaveCase(
            "create-create-create",
            prepare=lambda fs: None,
            first=lambda fs: fs.create_file("/d/t1", pa),
            others=(("bob", lambda fs: fs.create_file("/d/t2", pb)),
                    ("carol", lambda fs: fs.create_file("/d/t3", pc))),
            all_applied=lambda fs: (fs.read_file("/d/t1") == pa
                                    and fs.read_file("/d/t2") == pb
                                    and fs.read_file("/d/t3") == pc),
            first_rolled_back=lambda fs: (
                not _exists(fs, "/d/t1")
                and fs.read_file("/d/t2") == pb
                and fs.read_file("/d/t3") == pc)),
        InterleaveCase(
            "rename-create",
            prepare=lambda fs: fs.create_file("/d/x", px),
            first=lambda fs: fs.rename("/d/x", "/d/y"),
            others=(("bob", lambda fs: fs.create_file("/d/c", pc)),),
            all_applied=lambda fs: (not _exists(fs, "/d/x")
                                    and fs.read_file("/d/y") == px
                                    and fs.read_file("/d/c") == pc),
            first_rolled_back=lambda fs: (not _exists(fs, "/d/y")
                                          and fs.read_file("/d/x") == px
                                          and fs.read_file("/d/c") == pc)),
        InterleaveCase(
            "unlink-mkdir",
            prepare=lambda fs: fs.create_file("/d/x", px),
            first=lambda fs: fs.unlink("/d/x"),
            others=(("bob", lambda fs: fs.mkdir("/d/sub")),),
            all_applied=lambda fs: (not _exists(fs, "/d/x")
                                    and _exists(fs, "/d/sub")),
            first_rolled_back=lambda fs: (fs.read_file("/d/x") == px
                                          and _exists(fs, "/d/sub"))),
        InterleaveCase(
            "mkdir-create",
            prepare=lambda fs: None,
            first=lambda fs: fs.mkdir("/d/s"),
            others=(("bob", lambda fs: fs.create_file("/d/b2", pb)),),
            all_applied=lambda fs: (_exists(fs, "/d/s")
                                    and fs.read_file("/d/b2") == pb),
            first_rolled_back=lambda fs: (not _exists(fs, "/d/s")
                                          and fs.read_file("/d/b2") == pb)),
    ]


class InterleaveMatrix:
    """A tiny multi-client enterprise wired for interleaving sweeps."""

    USERS = ("alice", "bob", "carol")

    def __init__(self, seed: int = 0, key_bits: int = 512,
                 server_factory: "Callable | None" = None):
        rng = random.Random(seed)
        self.payloads = {
            name: bytes(rng.randrange(256) for _ in range(size))
            for name, size in (("a", 2 * _BLOCK), ("b", _BLOCK + 17),
                               ("c", 3 * _BLOCK), ("x", _BLOCK))}
        self.clock = SimClock()
        self.registry = PrincipalRegistry()
        for name in self.USERS:
            self.registry.add_user(User(
                user_id=name, keypair=rsa.generate_keypair(key_bits)))
        self.registry.create_group("eng", set(self.USERS),
                                   key_bits=key_bits)
        #: ``server_factory(clock)`` swaps the backing store -- the
        #: composed campaign (tools/campaign.py) runs the same sweeps
        #: over a ShardedServer with adversarial shards.
        self.server = (server_factory(self.clock)
                       if server_factory is not None else StorageServer())
        self.volume = SharoesVolume(self.server, self.registry,
                                    block_size=_BLOCK, clock=self.clock)
        self.volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(self.registry, self.server,
                        CryptoProvider()).publish_all()
        base = self.client("alice")
        base.mkdir("/d", mode=0o775)
        base.unmount()
        self._base_blobs = self.server.snapshot_blobs()
        self._base_next = self.volume.allocator._next
        self._base_now = self.clock.now

    # -- plumbing ------------------------------------------------------------

    def client(self, user_id: str, server=None,
               consistency: bool = False) -> SharoesFilesystem:
        fs = SharoesFilesystem(
            self.volume, self.registry.user(user_id),
            config=ClientConfig(journal=True, lease=True,
                                lease_duration_s=_LEASE_S,
                                cache_bytes=0),
            server=server)
        if consistency:
            fs.enable_consistency_log()
        fs.mount()
        return fs

    def _probe(self) -> SharoesFilesystem:
        """A fresh plain client for oracle checks (no lease, no journal)."""
        fs = SharoesFilesystem(self.volume, self.registry.user("alice"),
                               config=ClientConfig(cache_bytes=0))
        fs.mount()
        return fs

    def _restore(self) -> None:
        self.server.restore_blobs(self._base_blobs)
        self.volume.allocator._next = self._base_next
        self.clock.reset(self._base_now)

    def _audit(self) -> tuple[bool, int]:
        report = VolumeAuditor(self.volume).audit()
        return report.clean, len(report.orphaned_blobs)

    # -- one schedule --------------------------------------------------------

    def _drain(self, pending: list, clients: dict) -> tuple[int, bool]:
        """Run deferred rider ops until done.  -> (defer count, drained)."""
        deferred = 0
        rounds = 0
        while pending and rounds < _DRAIN_ROUNDS:
            rounds += 1
            requeue = []
            for user_id, op in pending:
                try:
                    op(clients[user_id])
                except LeaseHeldError:
                    deferred += 1
                    requeue.append((user_id, op))
            if len(requeue) == len(pending):
                # Every rider is still blocked: the only legal holder is
                # a dead/paused client -- wait out the lease.
                self.clock.advance(_LEASE_S + 1.0)
            pending = requeue
        return deferred, not pending

    def _vsl_round(self, clients: dict) -> bool:
        """Survivors publish + cross-check statements.  True = no fork."""
        try:
            for fs in clients.values():
                fs.publish_statement()
            for fs in clients.values():
                fs.sync_statements(list(clients))
            # Second round so the causal (seen-vector) check bites.
            for fs in clients.values():
                fs.publish_statement()
            for fs in clients.values():
                fs.sync_statements(list(clients))
        except ForkDetected:
            return False
        return True

    def run_cell(self, case: InterleaveCase, mode: str,
                 point: int = 0,
                 total: int | None = None) -> InterleaveOutcome:
        """Run one schedule from a pristine volume and judge it."""
        self._restore()
        prep = self.client("alice")
        case.prepare(prep)
        prep.unmount()

        riders = {uid: self.client(uid, consistency=True)
                  for uid, _ in case.others}
        pending: list = []
        deferred = 0

        def run_riders() -> None:
            nonlocal deferred
            for user_id, op in case.others:
                try:
                    op(riders[user_id])
                except LeaseHeldError:
                    deferred += 1
                    pending.append((user_id, op))

        first_error = ""
        if mode == CRASH:
            first_server = CrashingServer(self.server, crash_after=point)
        elif mode in (PREEMPT, ZOMBIE):
            def hook() -> None:
                if mode == ZOMBIE:
                    self.clock.advance(_LEASE_S + 1.0)
                run_riders()
            first_server = PauseServer(self.server, pause_at=point,
                                       hook=hook)
        else:
            first_server = None
        first = self.client("alice", server=first_server,
                            consistency=True)

        try:
            case.first(first)
        except ClientCrashed:
            first_error = "ClientCrashed"
        except LeaseLostError:
            first_error = "LeaseLostError"
        except LeaseHeldError:
            # The riders (injected mid-op) beat us to a lease; honest
            # clients just try again once the holder releases.
            first_error = "LeaseHeldError"

        if mode == CRASH:
            self.clock.advance(_LEASE_S + 1.0)
        if mode in (SEQUENTIAL, CRASH):
            run_riders()
        drained_deferred, drained = self._drain(pending, riders)
        deferred += drained_deferred
        if first_error == "LeaseHeldError" and drained:
            try:
                case.first(first)
                first_error = ""
            except LeaseLostError:
                first_error = "LeaseLostError"
            except LeaseHeldError:
                pass

        survivors = dict(riders)
        if first_error != "ClientCrashed":
            survivors["alice"] = first
        vsl_ok = drained and self._vsl_round(survivors)

        probe = self._probe()
        if _holds(case.all_applied, probe):
            outcome = "all_applied"
        elif (first_error and _holds(case.first_rolled_back, probe)):
            outcome = "first_rolled_back"
        else:
            outcome = (f"INCONSISTENT (first_error="
                       f"{first_error or 'none'})")
        clean, orphans = self._audit()
        return InterleaveOutcome(
            case=case.name, mode=mode, point=point,
            total_points=total if total is not None else point,
            outcome=outcome, first_error=first_error,
            deferred=deferred, fsck_clean=clean, orphans=orphans,
            vsl_ok=vsl_ok)

    # -- sweeps --------------------------------------------------------------

    def count_points(self, case: InterleaveCase) -> int:
        """Counting run: how many SSP mutations the first op issues."""
        self._restore()
        prep = self.client("alice")
        case.prepare(prep)
        prep.unmount()
        counter = CrashingServer(self.server)
        first = self.client("alice", server=counter)
        case.first(first)
        return counter.mutations

    def run_case(self, case: InterleaveCase,
                 modes: tuple = MODES) -> list[InterleaveOutcome]:
        total = self.count_points(case)
        outcomes = []
        if SEQUENTIAL in modes:
            outcomes.append(self.run_cell(case, SEQUENTIAL, 0, total))
        for mode in (PREEMPT, CRASH, ZOMBIE):
            if mode not in modes:
                continue
            for k in range(1, total + 1):
                outcomes.append(self.run_cell(case, mode, k, total))
        return outcomes

    def run(self, modes: tuple = MODES,
            cases: list[InterleaveCase] | None = None
            ) -> list[InterleaveOutcome]:
        results = []
        for case in cases or build_cases(self.payloads):
            results.extend(self.run_case(case, modes))
        return results


def outcomes_table(outcomes: list[InterleaveOutcome]) -> str:
    """Render the schedule-outcomes table (the CI artifact)."""
    lines = [f"{'case':<22} {'mode':<10} {'k':>3} {'T':>3} "
             f"{'outcome':<18} {'first-error':<15} {'defer':>5} "
             f"{'fsck':<5} {'orph':>4} {'vsl':<4}",
             "-" * 100]
    for o in outcomes:
        lines.append(
            f"{o.case:<22} {o.mode:<10} {o.point:>3} "
            f"{o.total_points:>3} {o.outcome:<18} "
            f"{(o.first_error or '-'):<15} {o.deferred:>5} "
            f"{'ok' if o.fsck_clean else 'DIRTY':<5} {o.orphans:>4} "
            f"{'ok' if o.vsl_ok else 'FORK':<4}")
    bad = sum(1 for o in outcomes if not o.consistent)
    lines.append("-" * 100)
    lines.append(f"{len(outcomes)} cells, {bad} inconsistent")
    return "\n".join(lines)
