"""Compact binary serialization helpers.

SHAROES stores keys *inside* other encrypted structures (metadata objects
embed DEK/DSK/DVK/MSK; directory tables embed MEK/MVK), so every structure
in the system needs a stable byte encoding.  This module provides a small
length-prefixed encoding used everywhere: writers push fields, readers pop
them in the same order.

The format is deliberately simple -- a sequence of fields, each encoded as a
4-byte big-endian length followed by the payload.  Integers are encoded as
their minimal big-endian bytes, strings as UTF-8.
"""

from __future__ import annotations

from .errors import SharoesError


class SerializationError(SharoesError):
    """Malformed byte stream during decoding."""


class Writer:
    """Accumulates length-prefixed fields into a byte string."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def put_bytes(self, value: bytes) -> "Writer":
        self._parts.append(len(value).to_bytes(4, "big"))
        self._parts.append(value)
        return self

    def put_str(self, value: str) -> "Writer":
        return self.put_bytes(value.encode("utf-8"))

    def put_int(self, value: int) -> "Writer":
        if value < 0:
            raise SerializationError("negative integers are not encodable")
        length = max(1, (value.bit_length() + 7) // 8)
        return self.put_bytes(value.to_bytes(length, "big"))

    def put_bool(self, value: bool) -> "Writer":
        return self.put_bytes(b"\x01" if value else b"\x00")

    def put_optional_bytes(self, value: bytes | None) -> "Writer":
        """None is encoded distinctly from b'' (flag byte + payload)."""
        if value is None:
            return self.put_bytes(b"\x00")
        return self.put_bytes(b"\x01" + value)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Pops length-prefixed fields pushed by :class:`Writer`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def get_bytes(self) -> bytes:
        if self._offset + 4 > len(self._data):
            raise SerializationError("truncated length prefix")
        length = int.from_bytes(self._data[self._offset:self._offset + 4],
                                "big")
        self._offset += 4
        if self._offset + length > len(self._data):
            raise SerializationError("truncated field payload")
        value = self._data[self._offset:self._offset + length]
        self._offset += length
        return value

    def get_str(self) -> str:
        try:
            return self.get_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("field is not valid UTF-8") from exc

    def get_int(self) -> int:
        raw = self.get_bytes()
        if not raw:
            raise SerializationError("empty integer field")
        return int.from_bytes(raw, "big")

    def get_bool(self) -> bool:
        raw = self.get_bytes()
        if raw not in (b"\x00", b"\x01"):
            raise SerializationError("invalid boolean field")
        return raw == b"\x01"

    def get_optional_bytes(self) -> bytes | None:
        raw = self.get_bytes()
        if not raw:
            raise SerializationError("empty optional field")
        if raw[0] == 0:
            if len(raw) != 1:
                raise SerializationError("non-empty None optional")
            return None
        return raw[1:]

    def at_end(self) -> bool:
        return self._offset == len(self._data)

    def expect_end(self) -> None:
        if not self.at_end():
            raise SerializationError(
                f"{len(self._data) - self._offset} trailing bytes")
