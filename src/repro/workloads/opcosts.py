"""Per-operation cost breakdown (paper Figure 13).

Measures individual filesystem operations on the SHAROES client, split
into the paper's three components: NETWORK, CRYPTO, OTHER.

Operations and their CAP mapping (see the paper's discussion of mkdir
cost varying with the CAPs created):

* ``getattr``      -- stat of a file whose parent chain is warm;
* ``mkdir:rwx``    -- mode 700: one (owner, rwx) CAP;
* ``mkdir:--x``    -- mode 711: adds exec-only CAPs whose inner
  directory-table rows need the extra per-name encryption;
* ``mkdir:both``   -- mode 751: rwx + read-exec + exec-only CAPs;
* ``read-1MB``     -- cold read of a 1 MB file (downlink-bound);
* ``write-1MB``    -- write+close of a 1 MB file (uplink-bound).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..fs.client import ClientConfig
from .runner import BenchEnv

MEGABYTE = 1_000_000

OPERATIONS = ("getattr", "mkdir:rwx", "mkdir:--x", "mkdir:both",
              "read-1MB", "write-1MB")

#: Qualitative anchors from the paper's text/figure: getattr completes in
#: "a little over 100 ms"; CRYPTO stays below 7% for every operation;
#: a 1 MB read takes ~23 s on the 350 Kbit/s downlink and a 1 MB write
#: ~10 s on the 850 Kbit/s uplink; mkdir sits in the 200-350 ms band,
#: rising with the number (and kind) of CAPs created.
PAPER_FIG13_ANCHORS = {
    "getattr_ms": (100.0, 160.0),
    "crypto_fraction_max": 0.07,
    "read_1mb_s": (20.0, 27.0),
    "write_1mb_s": (8.0, 13.0),
    "mkdir_ms": (150.0, 450.0),
}


@dataclass
class OpCost:
    op: str
    network_s: float
    crypto_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return self.network_s + self.crypto_s + self.other_s

    @property
    def crypto_fraction(self) -> float:
        return self.crypto_s / self.total_s if self.total_s else 0.0


def run_op_costs(env: BenchEnv, seed: int = 3) -> dict[str, OpCost]:
    """Measure each operation once on a warm-path client."""
    rng = random.Random(seed)
    fs = env.fresh_client(config=ClientConfig())
    cost = env.cost

    # Setup (not measured): a directory, a small file, a 1 MB file.
    payload = rng.randbytes(MEGABYTE)
    fs.mkdir("/bench", mode=0o755)
    fs.mknod("/bench/small", mode=0o644)
    fs.mknod("/bench/big", mode=0o644)
    fs.write_file("/bench/big", payload)
    fs.getattr("/bench")  # warm the parent chain

    results: dict[str, OpCost] = {}

    def measure(op: str, fn) -> None:
        with cost.span() as span:
            fn()
        results[op] = OpCost(op=op, network_s=span.network,
                             crypto_s=span.crypto, other_s=span.other)

    # getattr: evict the file's own metadata, keep the parent warm.
    fs.cache.invalidate_prefix(("meta", fs.getattr("/bench/small").inode))
    fs.cache.invalidate_prefix(("meta",))
    fs.getattr("/bench")  # rewarm parent chain only
    measure("getattr", lambda: fs.getattr("/bench/small"))

    measure("mkdir:rwx", lambda: fs.mkdir("/bench/d-rwx", mode=0o700))
    measure("mkdir:--x", lambda: fs.mkdir("/bench/d-xonly", mode=0o711))
    measure("mkdir:both", lambda: fs.mkdir("/bench/d-both", mode=0o751))

    big_inode = fs.getattr("/bench/big").inode
    fs.cache.invalidate_prefix(("data", big_inode))
    measure("read-1MB", lambda: fs.read_file("/bench/big"))

    fresh = rng.randbytes(MEGABYTE)
    measure("write-1MB", lambda: fs.write_file("/bench/big", fresh))

    return results
