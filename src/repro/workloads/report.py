"""Benchmark reporting: paper-vs-measured tables.

Every figure harness prints rows in the same style so EXPERIMENTS.md can
quote them directly.  We are reproducing on a *simulated* testbed, so the
interesting quantities are ratios and orderings, not absolute seconds --
both are shown.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ComparisonRow:
    label: str
    paper: float | None
    measured: float

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """Monospace table with a title rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(title: str, rows: list[ComparisonRow],
                      unit: str = "s") -> str:
    """Render paper-vs-measured rows with the measured/paper ratio."""
    body = []
    for row in rows:
        paper = f"{row.paper:.1f}" if row.paper is not None else "-"
        ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
        body.append([row.label, paper, f"{row.measured:.1f}", ratio])
    return format_table(
        title, ["implementation", f"paper ({unit})",
                f"measured ({unit})", "measured/paper"], body)


def fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value * 1000:.0f}ms"


def overhead_pct(value: float, baseline: float) -> float:
    """Relative overhead of ``value`` over ``baseline`` (0.11 = +11%)."""
    if baseline == 0:
        return 0.0
    return value / baseline - 1.0
