"""Operation traces: record once, replay against any implementation.

The evaluation's comparisons are only meaningful if every implementation
sees exactly the same operation stream.  A :class:`Trace` captures such a
stream (either programmatically or by recording a live client), can be
saved to and loaded from a portable text format, and replays against any
filesystem that speaks the common operation vocabulary -- the SHAROES
client or any of the four baselines.

Trace format: one op per line, tab-separated, sizes instead of contents
(payloads are regenerated deterministically from the line number, so
traces stay small but replays are byte-reproducible)::

    mkdir   /a      755
    create  /a/f    644     1024
    read    /a/f
    append  /a/f    128
    write   /a/f    2048
    getattr /a/f
    readdir /a
    chmod   /a/f    600
    unlink  /a/f
    rmdir   /a
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import SharoesError
from .runner import BenchEnv, flush_client

_ARITY = {
    "mkdir": 2, "create": 3, "read": 1, "append": 2, "write": 2,
    "getattr": 1, "readdir": 1, "chmod": 2, "unlink": 1, "rmdir": 1,
}


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation."""

    op: str
    path: str
    arg: int | None = None    # mode for mkdir/create/chmod; size for I/O
    size: int | None = None   # create's initial size

    def to_line(self) -> str:
        fields = [self.op, self.path]
        if self.op in ("mkdir", "chmod"):
            fields.append(f"{self.arg:o}")
        elif self.op == "create":
            fields.append(f"{self.arg:o}")
            fields.append(str(self.size))
        elif self.op in ("append", "write"):
            fields.append(str(self.arg))
        return "\t".join(fields)

    @classmethod
    def from_line(cls, line: str) -> "TraceOp":
        fields = line.rstrip("\n").split("\t")
        if not fields or fields[0] not in _ARITY:
            raise SharoesError(f"bad trace line: {line!r}")
        op = fields[0]
        if len(fields) != _ARITY[op] + 1:
            raise SharoesError(f"bad arity for {op}: {line!r}")
        path = fields[1]
        if op in ("mkdir", "chmod"):
            return cls(op=op, path=path, arg=int(fields[2], 8))
        if op == "create":
            return cls(op=op, path=path, arg=int(fields[2], 8),
                       size=int(fields[3]))
        if op in ("append", "write"):
            return cls(op=op, path=path, arg=int(fields[2]))
        return cls(op=op, path=path)


@dataclass
class Trace:
    """A replayable operation stream."""

    ops: list[TraceOp] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> "Trace":
        self.ops.append(TraceOp("mkdir", path, arg=mode))
        return self

    def create(self, path: str, size: int, mode: int = 0o644) -> "Trace":
        self.ops.append(TraceOp("create", path, arg=mode, size=size))
        return self

    def read(self, path: str) -> "Trace":
        self.ops.append(TraceOp("read", path))
        return self

    def append(self, path: str, size: int) -> "Trace":
        self.ops.append(TraceOp("append", path, arg=size))
        return self

    def write(self, path: str, size: int) -> "Trace":
        self.ops.append(TraceOp("write", path, arg=size))
        return self

    def getattr(self, path: str) -> "Trace":
        self.ops.append(TraceOp("getattr", path))
        return self

    def readdir(self, path: str) -> "Trace":
        self.ops.append(TraceOp("readdir", path))
        return self

    def chmod(self, path: str, mode: int) -> "Trace":
        self.ops.append(TraceOp("chmod", path, arg=mode))
        return self

    def unlink(self, path: str) -> "Trace":
        self.ops.append(TraceOp("unlink", path))
        return self

    def rmdir(self, path: str) -> "Trace":
        self.ops.append(TraceOp("rmdir", path))
        return self

    # -- persistence --------------------------------------------------------------

    def dumps(self) -> str:
        return "".join(op.to_line() + "\n" for op in self.ops)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        ops = [TraceOp.from_line(line) for line in text.splitlines()
               if line.strip() and not line.startswith("#")]
        return cls(ops=ops)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, encoding="utf-8") as handle:
            return cls.loads(handle.read())

    # -- replay -----------------------------------------------------------------------

    def replay(self, fs, seed: int = 0) -> int:
        """Replay every op against ``fs``; returns ops executed.

        Payload bytes are derived from (seed, op index): identical for
        every implementation replayed with the same seed.
        """
        for index, op in enumerate(self.ops):
            payload_rng = random.Random((seed << 20) | index)
            if op.op == "mkdir":
                fs.mkdir(op.path, mode=op.arg)
            elif op.op == "create":
                fs.create_file(op.path,
                               payload_rng.randbytes(op.size),
                               mode=op.arg)
            elif op.op == "read":
                fs.read_file(op.path)
            elif op.op == "append":
                fs.append_file(op.path, payload_rng.randbytes(op.arg))
            elif op.op == "write":
                fs.write_file(op.path, payload_rng.randbytes(op.arg))
            elif op.op == "getattr":
                fs.getattr(op.path)
            elif op.op == "readdir":
                fs.readdir(op.path)
            elif op.op == "chmod":
                fs.chmod(op.path, op.arg)
            elif op.op == "unlink":
                fs.unlink(op.path)
            elif op.op == "rmdir":
                fs.rmdir(op.path)
        return len(self.ops)


def synthesize_office_trace(users_dirs: int = 4, files_per_dir: int = 6,
                            churn: int = 60, seed: int = 21) -> Trace:
    """A small office-style day: project dirs, edits, reviews, cleanup."""
    rng = random.Random(seed)
    trace = Trace()
    paths = []
    for d in range(users_dirs):
        trace.mkdir(f"/proj{d}", mode=0o750)
        for f in range(files_per_dir):
            path = f"/proj{d}/doc{f}.txt"
            trace.create(path, rng.randint(200, 4000), mode=0o640)
            paths.append(path)
    for _ in range(churn):
        action = rng.random()
        path = rng.choice(paths)
        if action < 0.5:
            trace.read(path)
        elif action < 0.75:
            trace.append(path, rng.randint(50, 500))
        elif action < 0.9:
            trace.getattr(path)
        else:
            trace.readdir(path.rsplit("/", 1)[0])
    return trace


def replay_timed(env: BenchEnv, trace: Trace, seed: int = 0,
                 config=None) -> float:
    """Replay on a fresh client; returns simulated seconds."""
    fs = env.fresh_client(config=config)
    start = env.cost.clock.now
    trace.replay(fs, seed=seed)
    flush_client(fs)
    return env.cost.clock.now - start
