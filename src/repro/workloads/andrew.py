"""Andrew benchmark (paper Figures 11 and 12).

The classic five-phase software-development workload:

1. recursively create the directory skeleton;
2. copy a source tree into the filesystem;
3. stat every file (no data reads);
4. read every byte of every file;
5. compile and link (CPU-bound locally, with source reads and object
   writes through the filesystem).

Consistency model: close-to-open, phase-granular -- metadata and
directory tables are cached within a phase but revalidated at every phase
boundary (and once more for the compile's make-style timestamp scan).
That is what exposes PUB-OPT's private-key-per-stat cost in phases 2-4
exactly as the paper observes ("PUB-OPT overheads for Phase-2 and
Phase-4 are almost equal to the Phase-3 overheads").  Data caching stays
on throughout.

Default modes are the usual development umask (0o755 dirs / 0o644 files),
so SHAROES creates multiple CAP replicas per object -- the multi-CAP
create path that the Create-and-List microbenchmark deliberately avoids.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..fs.client import ClientConfig
from .runner import BenchEnv, flush_client

#: Source tree shape: ~70 files across 20 directories, ~700 KB total.
SRC_DIRS = 20
SRC_FILES = 70
MIN_SRC_BYTES = 2_000
MAX_SRC_BYTES = 18_000

#: Local CPU seconds charged for the compile itself (phase 5).  The same
#: constant applies to every implementation -- compilation speed does not
#: depend on the filesystem -- so it shifts all bars equally, as in the
#: paper's Figure 11.
COMPILE_CPU_SECONDS = 140.0

#: Object files written by the compile phase.
OBJ_FILES = 35
OBJ_RATIO = 0.6  # object size relative to its source

PHASES = ("mkdir", "copy", "stat", "read", "compile")

#: Published cumulative results (Figure 12).
PAPER_FIG12 = {
    "no-enc-md-d": 239.0,
    "no-enc-md": 248.0,
    "sharoes": 266.0,
    "pub-opt": 384.0,
}

#: Published overhead percentages vs NO-ENC-MD-D (Figure 12).
PAPER_FIG12_OVERHEADS = {
    "no-enc-md": 0.037,
    "sharoes": 0.11,
    "pub-opt": 0.60,
}


@dataclass
class AndrewResult:
    impl: str
    phase_seconds: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


def _source_tree(seed: int = 5) -> tuple[list[str], dict[str, bytes]]:
    """Deterministic synthetic source tree (dirs, {path: content})."""
    rng = random.Random(seed)
    dirs = ["/src"]
    for d in range(SRC_DIRS):
        dirs.append(f"/src/mod{d:02d}")
    files: dict[str, bytes] = {}
    for i in range(SRC_FILES):
        directory = dirs[1 + i % SRC_DIRS]
        size = rng.randint(MIN_SRC_BYTES, MAX_SRC_BYTES)
        files[f"{directory}/unit{i:03d}.c"] = rng.randbytes(size)
    return dirs, files


def _revalidate(fs) -> None:
    """Phase boundary: close-to-open revalidation.

    For the strict (default) client and the baselines this drops every
    cached metadata view and directory table; with the verified
    metadata cache (``ClientConfig(mdcache=True)``) entries stay warm
    and coherence is event-driven instead -- see docs/CACHING.md.
    """
    fs.revalidate()


def run_andrew(env: BenchEnv, seed: int = 5,
               mdcache: bool = False) -> AndrewResult:
    """Run all five phases; returns simulated seconds per phase.

    ``readahead`` is pinned off so Figures 11/12 reproduce the paper's
    2008 prototype bar-for-bar.  ``mdcache=True`` mounts the verified
    metadata cache instead (BENCH_7's configuration): phase boundaries
    keep entries warm, collapsing the path-resolve re-verification the
    strict model pays -- see docs/CACHING.md.
    """
    config = ClientConfig(metadata_cache=True, data_cache=True,
                          readahead=False, mdcache=mdcache)
    fs = env.fresh_client(config=config)
    cost = env.cost
    dirs, files = _source_tree(seed)
    phase_seconds: dict[str, float] = {}

    # Phase 1: make the directory skeleton.
    start = cost.clock.now
    for d in dirs:
        fs.mkdir(d, mode=0o755)
    fs.mkdir("/obj", mode=0o755)
    flush_client(fs)
    phase_seconds["mkdir"] = cost.clock.now - start

    # Phase 2: copy the source tree in.
    _revalidate(fs)
    start = cost.clock.now
    for path, content in files.items():
        fs.mknod(path, mode=0o644)
        fs.write_file(path, content)
    flush_client(fs)
    phase_seconds["copy"] = cost.clock.now - start

    # Phase 3: stat everything (no data).
    _revalidate(fs)
    start = cost.clock.now
    for d in dirs:
        fs.getattr(d)
    for path in files:
        fs.getattr(path)
    phase_seconds["stat"] = cost.clock.now - start

    # Phase 4: read every byte.
    _revalidate(fs)
    start = cost.clock.now
    for path in files:
        fs.read_file(path)
    phase_seconds["read"] = cost.clock.now - start

    # Phase 5: compile and link.
    _revalidate(fs)
    start = cost.clock.now
    rng = random.Random(seed + 1)
    source_paths = list(files)
    for path in source_paths:
        fs.getattr(path)  # make's dependency/timestamp scan
        fs.read_file(path)  # sources re-read (data cache helps)
    for i in range(OBJ_FILES):
        src = source_paths[i % len(source_paths)]
        obj_size = int(len(files[src]) * OBJ_RATIO)
        obj_path = f"/obj/unit{i:03d}.o"
        fs.mknod(obj_path, mode=0o644)
        fs.write_file(obj_path, rng.randbytes(obj_size))
    _revalidate(fs)
    for path in source_paths:
        fs.getattr(path)  # make's final freshness check
    flush_client(fs)
    cost.charge_compute(COMPILE_CPU_SECONDS)
    phase_seconds["compile"] = cost.clock.now - start

    return AndrewResult(impl=env.impl, phase_seconds=phase_seconds)
