"""Benchmark environment construction.

Builds a fresh (server, volume, client, cost model) stack for any of the
five implementations the paper evaluates:

    no-enc-md-d | no-enc-md | sharoes | public | pub-opt

All five run over the same simulated testbed (profile ``paper2008`` unless
overridden), so measured differences come exclusively from their
cryptographic designs -- the same methodology as the paper's section V.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.base import BASELINES, BaselineFilesystem, BaselineVolume
from ..errors import SharoesError
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..sim.clock import SimClock
from ..sim.costmodel import CostModel, CostProfile
from ..sim.profiles import PAPER_2008
from ..storage.server import StorageServer

IMPLEMENTATIONS = ("no-enc-md-d", "no-enc-md", "sharoes", "public",
                   "pub-opt")

#: Workloads runnable through :func:`run_observed` (and the CLI's
#: ``bench --workload`` / ``trace`` subcommands).
OBSERVED_WORKLOADS = ("postmark", "andrew", "createlist", "office")

#: Pretty labels used in benchmark output, matching the paper's figures.
LABELS = {
    "no-enc-md-d": "NO-ENC-MD-D",
    "no-enc-md": "NO-ENC-MD",
    "sharoes": "SHAROES",
    "public": "PUBLIC",
    "pub-opt": "PUB-OPT",
}


@dataclass
class BenchEnv:
    """One implementation stack ready to run a workload."""

    impl: str
    user: User
    registry: PrincipalRegistry
    server: StorageServer
    cost: CostModel
    fs: SharoesFilesystem | BaselineFilesystem
    _volume: object = None

    def fresh_client(self, config: ClientConfig | None = None,
                     reset_cost: bool = True
                     ) -> SharoesFilesystem | BaselineFilesystem:
        """A new client on the same volume (e.g. for cache-size sweeps)."""
        if reset_cost:
            self.cost.reset()
        if self.impl == "sharoes":
            fs = SharoesFilesystem(self._volume, self.user,
                                   cost_model=self.cost, config=config)
        else:
            fs = BASELINES[self.impl](self._volume, self.user,
                                      cost_model=self.cost, config=config)
        fs.mount()
        self.fs = fs
        return fs


def make_env(impl: str, profile: CostProfile = PAPER_2008,
             config: ClientConfig | None = None,
             extra_users: tuple[str, ...] = ()) -> BenchEnv:
    """Build a formatted volume + mounted client for one implementation."""
    if impl not in IMPLEMENTATIONS:
        raise SharoesError(f"unknown implementation {impl!r}; "
                           f"choose from {IMPLEMENTATIONS}")
    registry = PrincipalRegistry()
    user = registry.create_user("alice")
    for name in extra_users:
        registry.create_user(name)
    registry.create_group("eng", {"alice", *extra_users})
    server = StorageServer()
    cost = CostModel(profile, SimClock())

    if impl == "sharoes":
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        fs = SharoesFilesystem(volume, user, cost_model=cost, config=config)
    else:
        cls = BASELINES[impl]
        volume = BaselineVolume(server=server)
        volume.format(owner="alice", group="eng",
                      metadata_codec=cls.metadata_codec_cls(),
                      data_codec=cls.data_codec_cls(),
                      admin_key=user.keypair)
        fs = cls(volume, user, cost_model=cost, config=config)
    fs.mount()
    # Formatting happened outside the cost model's view on purpose: the
    # benchmarks measure steady-state operations, not provisioning.
    cost.reset()
    return BenchEnv(impl=impl, user=user, registry=registry, server=server,
                    cost=cost, fs=fs, _volume=volume)


def run_observed(workload: str, impl: str = "sharoes",
                 profile: CostProfile = PAPER_2008,
                 params: dict | None = None):
    """Run one named workload with full span/metrics capture.

    Returns ``(payload, spans)``: the machine-readable ``BENCH_*``
    payload (see :mod:`repro.obs.bench`) and the finished root spans of
    the client that ran the workload.  Workload modules are imported
    lazily so plain benchmark runs never pay for harnesses they skip.
    """
    from ..obs.bench import bench_payload, op_report

    params = dict(params or {})
    env = make_env(impl, profile=profile)
    if workload == "postmark":
        from .postmark import run_postmark
        run_postmark(env, **params)
    elif workload == "andrew":
        from .andrew import run_andrew
        run_andrew(env, **params)
    elif workload == "createlist":
        from .createlist import run_create_and_list
        run_create_and_list(env, **params)
    elif workload == "office":
        from .trace import replay_timed, synthesize_office_trace
        trace_params = {k: params.pop(k) for k in
                        ("users_dirs", "files_per_dir", "churn")
                        if k in params}
        replay_timed(env, synthesize_office_trace(**trace_params),
                     **params)
    else:
        raise SharoesError(f"unknown workload {workload!r}; "
                           f"choose from {OBSERVED_WORKLOADS}")
    # The workload ran on env.fs (fresh_client rebinds it); its tracer
    # holds every finished root span since the post-mount cost reset.
    spans = list(env.fs.tracer.finished)
    payload = bench_payload(
        workload, op_report(spans), registry=env.fs.metrics,
        cost=env.cost, params=dict(params, impl=impl))
    return payload, spans
