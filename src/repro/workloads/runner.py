"""Benchmark environment construction.

Builds a fresh (server, volume, client, cost model) stack for any of the
five implementations the paper evaluates:

    no-enc-md-d | no-enc-md | sharoes | public | pub-opt

All five run over the same simulated testbed (profile ``paper2008`` unless
overridden), so measured differences come exclusively from their
cryptographic designs -- the same methodology as the paper's section V.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.base import BASELINES, BaselineFilesystem, BaselineVolume
from ..errors import SharoesError
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..sim.clock import SimClock
from ..sim.costmodel import CostModel, CostProfile
from ..sim.profiles import PAPER_2008
from ..storage.server import StorageServer

IMPLEMENTATIONS = ("no-enc-md-d", "no-enc-md", "sharoes", "public",
                   "pub-opt")

#: Workloads runnable through :func:`run_observed` (and the CLI's
#: ``bench --workload`` / ``trace`` subcommands).
OBSERVED_WORKLOADS = ("postmark", "andrew", "createlist", "office")

#: Pretty labels used in benchmark output, matching the paper's figures.
LABELS = {
    "no-enc-md-d": "NO-ENC-MD-D",
    "no-enc-md": "NO-ENC-MD",
    "sharoes": "SHAROES",
    "public": "PUBLIC",
    "pub-opt": "PUB-OPT",
}


@dataclass
class BenchEnv:
    """One implementation stack ready to run a workload."""

    impl: str
    user: User
    registry: PrincipalRegistry
    server: StorageServer
    cost: CostModel
    fs: SharoesFilesystem | BaselineFilesystem
    _volume: object = None
    #: fault-injecting wrapper clients mount through (chaos benchmarks);
    #: None = clients talk to ``server`` directly.
    _client_server: object = None

    def fresh_client(self, config: ClientConfig | None = None,
                     reset_cost: bool = True
                     ) -> SharoesFilesystem | BaselineFilesystem:
        """A new client on the same volume (e.g. for cache-size sweeps)."""
        if reset_cost:
            self.cost.reset()
        if self.impl == "sharoes":
            fs = SharoesFilesystem(self._volume, self.user,
                                   cost_model=self.cost, config=config,
                                   server=self._client_server)
        else:
            fs = BASELINES[self.impl](self._volume, self.user,
                                      cost_model=self.cost, config=config)
        fs.mount()
        self.fs = fs
        return fs


def make_env(impl: str, profile: CostProfile = PAPER_2008,
             config: ClientConfig | None = None,
             extra_users: tuple[str, ...] = (),
             flaky_p: float = 0.0, flaky_seed: int = 0) -> BenchEnv:
    """Build a formatted volume + mounted client for one implementation.

    ``flaky_p`` > 0 interposes a transient-fault injector between the
    client and the SSP, failing that fraction of requests (seeded, so
    runs replay); the client then mounts with a default
    :class:`~repro.storage.resilient.RetryPolicy` unless the config
    already carries one.  Formatting bypasses the injector so every
    environment starts from an intact volume.
    """
    if impl not in IMPLEMENTATIONS:
        raise SharoesError(f"unknown implementation {impl!r}; "
                           f"choose from {IMPLEMENTATIONS}")
    if flaky_p and impl != "sharoes":
        raise SharoesError(
            "fault injection (flaky_p) requires the sharoes "
            "implementation; baselines have no retry layer")
    registry = PrincipalRegistry()
    user = registry.create_user("alice")
    for name in extra_users:
        registry.create_user(name)
    registry.create_group("eng", {"alice", *extra_users})
    server = StorageServer()
    cost = CostModel(profile, SimClock())
    client_server = None

    if impl == "sharoes":
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        if flaky_p:
            from ..storage.resilient import FlakyServer, RetryPolicy
            client_server = FlakyServer(server, failure_rate=flaky_p,
                                        seed=flaky_seed)
            # Volume-level default so every client -- including the
            # fresh ones workloads mount for cache sweeps -- retries.
            if volume.retry_policy is None:
                volume.retry_policy = RetryPolicy(seed=flaky_seed)
        fs = SharoesFilesystem(volume, user, cost_model=cost, config=config,
                               server=client_server)
    else:
        cls = BASELINES[impl]
        volume = BaselineVolume(server=server)
        volume.format(owner="alice", group="eng",
                      metadata_codec=cls.metadata_codec_cls(),
                      data_codec=cls.data_codec_cls(),
                      admin_key=user.keypair)
        fs = cls(volume, user, cost_model=cost, config=config)
    fs.mount()
    # Formatting happened outside the cost model's view on purpose: the
    # benchmarks measure steady-state operations, not provisioning.
    cost.reset()
    return BenchEnv(impl=impl, user=user, registry=registry, server=server,
                    cost=cost, fs=fs, _volume=volume,
                    _client_server=client_server)


def run_observed(workload: str, impl: str = "sharoes",
                 profile: CostProfile = PAPER_2008,
                 params: dict | None = None,
                 flaky_p: float = 0.0, flaky_seed: int = 0,
                 config: "ClientConfig | None" = None):
    """Run one named workload with full span/metrics capture.

    Returns ``(payload, spans)``: the machine-readable ``BENCH_*``
    payload (see :mod:`repro.obs.bench`) and the finished root spans of
    the client that ran the workload.  Workload modules are imported
    lazily so plain benchmark runs never pay for harnesses they skip.
    ``config`` overrides the mounted client's configuration (benchmark
    snapshots use it to toggle optional features like readahead).
    """
    from ..obs.bench import bench_payload, op_report

    params = dict(params or {})
    env = make_env(impl, profile=profile, flaky_p=flaky_p,
                   flaky_seed=flaky_seed, config=config)
    if workload == "postmark":
        from .postmark import run_postmark
        run_postmark(env, **params)
    elif workload == "andrew":
        from .andrew import run_andrew
        run_andrew(env, **params)
    elif workload == "createlist":
        from .createlist import run_create_and_list
        run_create_and_list(env, **params)
    elif workload == "office":
        from .trace import replay_timed, synthesize_office_trace
        trace_params = {k: params.pop(k) for k in
                        ("users_dirs", "files_per_dir", "churn")
                        if k in params}
        replay_timed(env, synthesize_office_trace(**trace_params),
                     **params)
    else:
        raise SharoesError(f"unknown workload {workload!r}; "
                           f"choose from {OBSERVED_WORKLOADS}")
    # The workload ran on env.fs (fresh_client rebinds it); its tracer
    # holds every finished root span since the post-mount cost reset.
    spans = list(env.fs.tracer.finished)
    run_params = dict(params, impl=impl)
    if flaky_p:
        run_params.update(flaky_p=flaky_p, flaky_seed=flaky_seed)
    payload = bench_payload(
        workload, op_report(spans), registry=env.fs.metrics,
        cost=env.cost, params=run_params)
    return payload, spans
