"""Benchmark environment construction.

Builds a fresh (server, volume, client, cost model) stack for any of the
five implementations the paper evaluates:

    no-enc-md-d | no-enc-md | sharoes | public | pub-opt

All five run over the same simulated testbed (profile ``paper2008`` unless
overridden), so measured differences come exclusively from their
cryptographic designs -- the same methodology as the paper's section V.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..baselines.base import BASELINES, BaselineFilesystem, BaselineVolume
from ..errors import SharoesError
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..principals.registry import PrincipalRegistry
from ..principals.users import User
from ..sim.clock import SimClock
from ..sim.costmodel import CostModel, CostProfile
from ..sim.profiles import PAPER_2008
from ..storage.server import StorageServer

IMPLEMENTATIONS = ("no-enc-md-d", "no-enc-md", "sharoes", "public",
                   "pub-opt")

#: Workloads runnable through :func:`run_observed` (and the CLI's
#: ``bench --workload`` / ``trace`` subcommands).
OBSERVED_WORKLOADS = ("postmark", "andrew", "createlist", "office")

#: Pretty labels used in benchmark output, matching the paper's figures.
LABELS = {
    "no-enc-md-d": "NO-ENC-MD-D",
    "no-enc-md": "NO-ENC-MD",
    "sharoes": "SHAROES",
    "public": "PUBLIC",
    "pub-opt": "PUB-OPT",
}


@dataclass
class BenchEnv:
    """One implementation stack ready to run a workload."""

    impl: str
    user: User
    registry: PrincipalRegistry
    server: StorageServer
    cost: CostModel
    fs: SharoesFilesystem | BaselineFilesystem
    _volume: object = None
    #: fault-injecting wrapper clients mount through (chaos benchmarks);
    #: None = clients talk to ``server`` directly.
    _client_server: object = None
    #: wire-trace propagation on for every client of this environment
    #: (including the fresh ones workloads mount for cache sweeps).
    wire_trace: bool = False
    #: extra tracer sinks attached to every client's tracer (e.g. an
    #: EventLog's span_sink for ``repro trace --events``).
    tracer_sinks: tuple = ()
    #: ClientConfig fields stamped onto *every* client of this
    #: environment, including the fresh ones workloads mint for cache
    #: sweeps (which otherwise build their own configs and would drop
    #: environment-level knobs like ``concurrency``).
    client_overrides: dict = dataclasses.field(default_factory=dict)

    def fresh_client(self, config: ClientConfig | None = None,
                     reset_cost: bool = True
                     ) -> SharoesFilesystem | BaselineFilesystem:
        """A new client on the same volume (e.g. for cache-size sweeps)."""
        if reset_cost:
            self.cost.reset()
        if self.client_overrides:
            config = dataclasses.replace(config or ClientConfig(),
                                         **self.client_overrides)
        if self.wire_trace:
            config = _traced_config(config)
        if self.impl == "sharoes":
            fs = SharoesFilesystem(self._volume, self.user,
                                   cost_model=self.cost, config=config,
                                   server=self._client_server)
        else:
            fs = BASELINES[self.impl](self._volume, self.user,
                                      cost_model=self.cost, config=config)
        fs.mount()
        for sink in self.tracer_sinks:
            fs.tracer.add_sink(sink)
        self.fs = fs
        return fs


def flush_client(fs) -> None:
    """Ship any write-behind state before a timing or comparison point.

    Workloads call this at measurement boundaries so a pipelined client
    cannot claim a wall-clock win by leaving staged mutations unshipped;
    a no-op for sequential clients and baselines (no scheduler).
    """
    flush = getattr(fs, "flush_staged", None)
    if flush is not None:
        flush()


def _traced_config(config: ClientConfig | None) -> ClientConfig:
    """Return ``config`` with ``wire_trace=True`` stamped on."""
    if config is None:
        return ClientConfig(wire_trace=True)
    if getattr(config, "wire_trace", False):
        return config
    return dataclasses.replace(config, wire_trace=True)


def make_env(impl: str, profile: CostProfile = PAPER_2008,
             config: ClientConfig | None = None,
             extra_users: tuple[str, ...] = (),
             flaky_p: float = 0.0, flaky_seed: int = 0,
             wire_trace: bool = False,
             tracer_sinks: tuple = ()) -> BenchEnv:
    """Build a formatted volume + mounted client for one implementation.

    ``flaky_p`` > 0 interposes a transient-fault injector between the
    client and the SSP, failing that fraction of requests (seeded, so
    runs replay); the client then mounts with a default
    :class:`~repro.storage.resilient.RetryPolicy` unless the config
    already carries one.  Formatting bypasses the injector so every
    environment starts from an intact volume.

    ``wire_trace`` stamps ``ClientConfig.wire_trace`` onto every client
    of the environment (sharoes only -- baselines have no wire layer to
    trace, so the flag is a no-op there); ``tracer_sinks`` are attached
    to every client's tracer.
    """
    if impl not in IMPLEMENTATIONS:
        raise SharoesError(f"unknown implementation {impl!r}; "
                           f"choose from {IMPLEMENTATIONS}")
    if flaky_p and impl != "sharoes":
        raise SharoesError(
            "fault injection (flaky_p) requires the sharoes "
            "implementation; baselines have no retry layer")
    shards = getattr(config, "shards", 0) if config is not None else 0
    if shards and impl != "sharoes":
        raise SharoesError(
            "a sharded backend (shards > 0) requires the sharoes "
            "implementation; baselines assume one SSP")
    registry = PrincipalRegistry()
    user = registry.create_user("alice")
    for name in extra_users:
        registry.create_user(name)
    registry.create_group("eng", {"alice", *extra_users})
    clock = SimClock()
    if shards:
        # The sharded backend presents the StorageServer interface, so
        # volume/client/fsck code is oblivious; per-shard breaker
        # cooldowns run on the same simulated clock as the cost model.
        from ..storage.shards import ShardedServer
        server = ShardedServer(shards=shards, replicas=config.replicas,
                               clock=clock)
    else:
        server = StorageServer()
    cost = CostModel(profile, clock)
    client_server = None
    if wire_trace and impl == "sharoes":
        config = _traced_config(config)

    if impl == "sharoes":
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        if flaky_p:
            from ..storage.resilient import FlakyServer, RetryPolicy
            client_server = FlakyServer(server, failure_rate=flaky_p,
                                        seed=flaky_seed)
            # Volume-level default so every client -- including the
            # fresh ones workloads mount for cache sweeps -- retries.
            if volume.retry_policy is None:
                volume.retry_policy = RetryPolicy(seed=flaky_seed)
        fs = SharoesFilesystem(volume, user, cost_model=cost, config=config,
                               server=client_server)
    else:
        cls = BASELINES[impl]
        volume = BaselineVolume(server=server)
        volume.format(owner="alice", group="eng",
                      metadata_codec=cls.metadata_codec_cls(),
                      data_codec=cls.data_codec_cls(),
                      admin_key=user.keypair)
        fs = cls(volume, user, cost_model=cost, config=config)
    fs.mount()
    for sink in tracer_sinks:
        fs.tracer.add_sink(sink)
    # Formatting happened outside the cost model's view on purpose: the
    # benchmarks measure steady-state operations, not provisioning.
    cost.reset()
    overrides: dict = {}
    concurrency = getattr(config, "concurrency", 0) if config else 0
    if concurrency and impl == "sharoes":
        overrides["concurrency"] = concurrency
    return BenchEnv(impl=impl, user=user, registry=registry, server=server,
                    cost=cost, fs=fs, _volume=volume,
                    _client_server=client_server,
                    wire_trace=wire_trace and impl == "sharoes",
                    tracer_sinks=tuple(tracer_sinks),
                    client_overrides=overrides)


def _trace_section(env: BenchEnv) -> dict | None:
    """Trace-derived BENCH sections from a wire-traced environment.

    ``server``: the TracedServer's phase totals (decode/disk/verify
    seconds, span and error counts); ``resolve_depth``: the client's
    per-walk-depth cache attribution.  ``None`` when the (last) client
    ran without wire tracing.
    """
    traced = getattr(env.fs, "traced_server", None)
    if traced is None:
        return None
    return {"server": traced.phase_totals(),
            "resolve_depth": env.fs.walk_depth_stats()}


def run_observed(workload: str, impl: str = "sharoes",
                 profile: CostProfile = PAPER_2008,
                 params: dict | None = None,
                 flaky_p: float = 0.0, flaky_seed: int = 0,
                 config: "ClientConfig | None" = None,
                 wire_trace: bool = False,
                 tracer_sinks: tuple = (),
                 setup=None,
                 _env_out: list | None = None):
    """Run one named workload with full span/metrics capture.

    Returns ``(payload, spans)``: the machine-readable ``BENCH_*``
    payload (see :mod:`repro.obs.bench`) and the finished root spans of
    the client that ran the workload.  Workload modules are imported
    lazily so plain benchmark runs never pay for harnesses they skip.
    ``config`` overrides the mounted client's configuration (benchmark
    snapshots use it to toggle optional features like readahead).

    ``wire_trace=True`` propagates trace context over the wire and adds
    a ``trace`` section to the payload (server phase totals + resolve
    depth attribution).  ``setup``, when given, receives the freshly
    built environment *before* the workload runs -- harnesses use it to
    interpose wrappers (e.g. a mid-run rebalance trigger) under the
    clients the workload will mount.  ``_env_out``, when a list,
    receives the environment so callers (``run_traced``) can reach the
    server spans.
    """
    from ..obs.bench import bench_payload, op_report

    params = dict(params or {})
    env = make_env(impl, profile=profile, flaky_p=flaky_p,
                   flaky_seed=flaky_seed, config=config,
                   wire_trace=wire_trace, tracer_sinks=tracer_sinks)
    if _env_out is not None:
        _env_out.append(env)
    if setup is not None:
        setup(env)
    if workload == "postmark":
        from .postmark import run_postmark
        run_postmark(env, **params)
    elif workload == "andrew":
        from .andrew import run_andrew
        run_andrew(env, **params)
    elif workload == "createlist":
        from .createlist import run_create_and_list
        run_create_and_list(env, **params)
    elif workload == "office":
        from .trace import replay_timed, synthesize_office_trace
        trace_params = {k: params.pop(k) for k in
                        ("users_dirs", "files_per_dir", "churn")
                        if k in params}
        replay_timed(env, synthesize_office_trace(**trace_params),
                     **params)
    else:
        raise SharoesError(f"unknown workload {workload!r}; "
                           f"choose from {OBSERVED_WORKLOADS}")
    # Defensive barrier: nothing staged survives past the run, so the
    # payload (and any fsck of the server) sees the settled SSP state.
    flush_client(env.fs)
    # The workload ran on env.fs (fresh_client rebinds it); its tracer
    # holds every finished root span since the post-mount cost reset.
    spans = list(env.fs.tracer.finished)
    run_params = dict(params, impl=impl)
    if flaky_p:
        run_params.update(flaky_p=flaky_p, flaky_seed=flaky_seed)
    if env.wire_trace:
        run_params["wire_trace"] = True
    payload = bench_payload(
        workload, op_report(spans), registry=env.fs.metrics,
        cost=env.cost, params=run_params,
        trace=_trace_section(env) if env.wire_trace else None)
    return payload, spans


def run_traced(workload: str, impl: str = "sharoes",
               profile: CostProfile = PAPER_2008,
               params: dict | None = None,
               config: "ClientConfig | None" = None):
    """Run one workload wire-traced and stitch client + server spans.

    Returns ``(payload, roots, orphans, env)``: the BENCH payload (with
    its ``trace`` section), the stitched span-tree dicts (server spans
    grafted under the client spans that issued them), any orphan server
    spans (should be empty -- asserted in tests), and the environment.
    """
    from ..obs.wiretrace import stitch

    env_box: list = []
    payload, spans = run_observed(
        workload, impl=impl, profile=profile, params=params,
        config=config, wire_trace=True, _env_out=env_box)
    env = env_box[0]
    traced = getattr(env.fs, "traced_server", None)
    server_spans = list(traced.spans) if traced is not None else []
    roots, orphans = stitch(spans, server_spans)
    return payload, roots, orphans, env
