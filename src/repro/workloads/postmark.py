"""Postmark benchmark (paper Figure 10).

Katcher's Postmark models mail/web-server workloads: create a pool of
small files (500 B - 9.77 KB, the paper's default sizes), run a stream of
transactions (read / append / create / delete), then delete the pool.
Metadata-intensive by design.

The paper sweeps the *client cache size* (as a fraction of total data):
small caches mean every transaction re-fetches and re-decrypts metadata,
which is where the public-key comparators fall apart.  PUBLIC is excluded
(its numbers are off the chart), matching the paper.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..errors import FilesystemError
from ..fs.client import ClientConfig
from .runner import BenchEnv, flush_client

_RUN_COUNTER = itertools.count()

MIN_FILE_BYTES = 500
MAX_FILE_BYTES = 10_000  # the paper's "9.77 KB"

#: Implementations plotted in Figure 10 (PUBLIC omitted, as in the paper).
FIG10_IMPLS = ("no-enc-md-d", "no-enc-md", "sharoes", "pub-opt")

#: Cache sizes (fraction of dataset) on the figure's X axis.  The low
#: end is 5% rather than a literal zero: a zero-byte cache cannot even
#: pin the mounted superblock/root, a state no real client is in.
FIG10_CACHE_FRACTIONS = (0.05, 0.10, 0.25, 0.50, 0.75, 1.00)

#: Qualitative anchors from the paper's text for the 10% cache point:
#: PUB-OPT is ~64% above NO-ENC-MD-D and ~43% above SHAROES; SHAROES
#: stays within ~15% of NO-ENC-MD-D at every cache size.
PAPER_FIG10_ANCHORS = {
    "pubopt_over_baseline_at_10pct": 0.64,
    "pubopt_over_sharoes_at_10pct": 0.43,
    "sharoes_over_baseline_max": 0.15,
}


@dataclass
class PostmarkResult:
    impl: str
    cache_fraction: float
    total_seconds: float
    transactions: int
    files: int
    dataset_bytes: int


def dataset_bytes(files: int, seed: int = 11) -> int:
    """Deterministic dataset size for a given pool (for cache budgets)."""
    rng = random.Random(seed)
    return sum(rng.randint(MIN_FILE_BYTES, MAX_FILE_BYTES)
               for _ in range(files))


def run_postmark(env: BenchEnv, files: int = 500, transactions: int = 500,
                 cache_fraction: float = 0.10, seed: int = 11,
                 subdirs: int = 10) -> PostmarkResult:
    """Run one Postmark pass at one cache size."""
    rng = random.Random(seed)
    sizes = [rng.randint(MIN_FILE_BYTES, MAX_FILE_BYTES)
             for _ in range(files)]
    total_bytes = sum(sizes)
    cache_bytes = (None if cache_fraction >= 1.0
                   else int(total_bytes * cache_fraction))
    config = ClientConfig(cache_bytes=cache_bytes)
    fs = env.fresh_client(config=config)
    cost = env.cost
    run = next(_RUN_COUNTER)  # unique namespace per pass on a shared volume

    start = cost.clock.now
    for d in range(subdirs):
        fs.mkdir(f"/pm{run}d{d}", mode=0o700)
    pool: list[str] = []
    for i, size in enumerate(sizes):
        path = f"/pm{run}d{i % subdirs}/f{i:05d}"
        fs.mknod(path, mode=0o600)
        fs.write_file(path, rng.randbytes(size))
        pool.append(path)
    next_id = files

    for _ in range(transactions):
        op = rng.random()
        if op < 0.25 and pool:
            fs.read_file(rng.choice(pool))
        elif op < 0.50 and pool:
            fs.append_file(rng.choice(pool),
                           rng.randbytes(rng.randint(64, 512)))
        elif op < 0.75:
            path = f"/pm{run}d{next_id % subdirs}/f{next_id:05d}"
            next_id += 1
            fs.mknod(path, mode=0o600)
            fs.write_file(path, rng.randbytes(
                rng.randint(MIN_FILE_BYTES, MAX_FILE_BYTES)))
            pool.append(path)
        elif pool:
            victim = pool.pop(rng.randrange(len(pool)))
            fs.unlink(victim)
        else:
            raise FilesystemError("postmark pool unexpectedly empty")

    for path in pool:
        fs.unlink(path)
    flush_client(fs)  # settle write-behind before the clock is read
    total = cost.clock.now - start
    return PostmarkResult(impl=env.impl, cache_fraction=cache_fraction,
                          total_seconds=total, transactions=transactions,
                          files=files, dataset_bytes=total_bytes)
