"""Many-client throughput harness (PR 10).

The paper's workloads (Postmark, Andrew, create/list) measure one
mounted client at a time.  The concurrency work of this PR only pays
off when *many* clients hammer the SSP at once, so this harness mounts
hundreds of independent clients -- each a distinct enrolled user with
its own journal, leases, and cost meter -- against one shared volume
and drives a seeded interleaved operation mix across them.

Honesty rules, in the spirit of the differential suites:

* **One timeline.**  Every client's :class:`~repro.sim.costmodel.
  CostModel` shares a single :class:`~repro.sim.clock.SimClock`, which
  is also the volume's lease time authority.  The simulated SSP
  serializes requests on that timeline (it is one storage server), so
  "throughput" here means *operations completed per simulated second
  of SSP-observed time*, with client-side pipelining (``concurrency``)
  shrinking each operation's share of the wire.  That is the honest
  model for a single-box simulation: it never invents parallel wall
  clocks the backend could not actually provide.
* **Strict ordering.**  The interleave order is a seeded shuffle, so a
  run is exactly reproducible; per-operation latency is the shared
  clock's delta around the call, and the quoted percentiles are exact
  (:class:`~repro.sim.stats.Percentiles`, not histogram estimates).
* **Settled state or it didn't happen.**  Every client is flushed and
  unmounted before the final :class:`~repro.tools.fsck.VolumeAuditor`
  pass, and the run only counts as healthy if that audit is clean.

Lease contention is part of the workload, not an error: operations on
the shared directory collide on inode leases, and a mutation that
exhausts ``lease_wait_attempts`` surfaces :class:`~repro.errors.
LeaseHeldError`, which the harness counts as a conflict and moves on
-- exactly what a real client under contention would do.
"""

from __future__ import annotations

import random

from ..crypto.provider import CryptoProvider
from ..errors import LeaseError
from ..fs.client import ClientConfig, SharoesFilesystem
from ..fs.volume import SharoesVolume
from ..principals.groups import GroupKeyService
from ..principals.registry import PrincipalRegistry
from ..sim.clock import SimClock
from ..sim.costmodel import CostModel, CostProfile
from ..sim.profiles import PAPER_2008
from ..sim.stats import Percentiles
from ..storage.server import StorageServer
from ..tools.fsck import VolumeAuditor

#: enrolment key size for harness principals.  Real deployments use
#: RSA-2048; the simulation's cost model already prices crypto by the
#: profile, so the *enrolment* keys only need to be functional -- and
#: generating hundreds of 2048-bit keys would dominate the harness.
_HARNESS_KEY_BITS = 512

#: operation mix (weights normalised by ``random.choices``).  Biased
#: toward the private-directory traffic of a file server's steady
#: state, with enough shared-directory mutation to keep lease
#: contention realistic.
_OP_MIX = (
    ("create", 20),        # new file in the client's home directory
    ("append", 15),        # grow one of the client's own files
    ("read", 35),          # re-read an own or shared file
    ("stat", 10),          # getattr on an own file
    ("readdir", 5),        # list the shared directory
    ("shared_append", 15),  # contended append to a shared file
)


def run_throughput(clients: int = 100, ops_per_client: int = 20,
                   seed: int = 1234, profile: CostProfile = PAPER_2008,
                   concurrency: int = 0, shared_files: int = 8,
                   block_size: int = 8192, file_blocks: int = 6,
                   lease_duration_s: float = 5.0,
                   lease_wait_attempts: int = 8) -> dict:
    """Drive ``clients`` mounted users through a seeded op interleave.

    Returns the machine-readable ``throughput`` section recorded in
    ``BENCH_10.json``: ops/sec on the shared simulated timeline, exact
    latency percentiles, per-kind operation counts, lease conflicts,
    wire requests, and the final fsck verdict.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    rng = random.Random(seed)

    # -- provisioning (outside the measured window) ---------------------------
    registry = PrincipalRegistry()
    registry.create_user("alice", key_bits=_HARNESS_KEY_BITS)
    user_ids = [f"u{i:03d}" for i in range(clients)]
    for uid in user_ids:
        registry.create_user(uid, key_bits=_HARNESS_KEY_BITS)
    registry.create_group("eng", {"alice", *user_ids},
                          key_bits=_HARNESS_KEY_BITS)

    clock = SimClock()
    server = StorageServer()
    # A smaller block size than the 64 KiB default keeps the dataset
    # cheap while making typical files span several blocks, so reads
    # exercise the scheduler's fetch flights (the concurrency axis this
    # harness exists to measure -- journal mode disables write-behind,
    # so pipelined reads are where the window pays off here).
    volume = SharoesVolume(server, registry, clock=clock,
                           block_size=block_size)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    # The root directory is 0755 (group members cannot create in it),
    # so the admin provisions group-writable homes and a shared dir.
    admin = SharoesFilesystem(volume, registry.user("alice"),
                              cost_model=CostModel(profile, clock))
    admin.mount()
    admin.mkdir("/shared", mode=0o775)
    shared_paths = []
    for j in range(shared_files):
        path = f"/shared/s{j:02d}.dat"
        admin.create_file(
            path,
            rng.randbytes(rng.randint(2, file_blocks) * block_size),
            mode=0o664)
        shared_paths.append(path)
    for uid in user_ids:
        admin.mkdir(f"/{uid}", mode=0o775)
    admin.unmount()

    config = ClientConfig(journal=True, lease=True,
                          lease_duration_s=lease_duration_s,
                          lease_wait_attempts=lease_wait_attempts,
                          concurrency=concurrency)
    mounts: list[SharoesFilesystem] = []
    for uid in user_ids:
        fs = SharoesFilesystem(volume, registry.user(uid),
                               cost_model=CostModel(profile, clock),
                               config=config)
        fs.mount()
        mounts.append(fs)
    mount_requests = [fs.request_count for fs in mounts]

    # -- the measured interleave ----------------------------------------------
    schedule = [i for i in range(clients) for _ in range(ops_per_client)]
    rng.shuffle(schedule)
    own_files: list[list[str]] = [[] for _ in range(clients)]
    created: list[int] = [0] * clients
    kinds = [k for k, _ in _OP_MIX]
    weights = [w for _, w in _OP_MIX]

    latencies: list[float] = []
    op_counts = {kind: 0 for kind in kinds}
    conflicts = 0
    start = clock.now
    for i in schedule:
        fs = mounts[i]
        kind = rng.choices(kinds, weights=weights)[0]
        # Kinds that need an existing own file fall back to create.
        if kind in ("append", "stat") and not own_files[i]:
            kind = "create"
        began = clock.now
        try:
            if kind == "create":
                path = f"/{user_ids[i]}/f{created[i]:04d}.dat"
                created[i] += 1
                size = rng.randint(1, file_blocks) * block_size
                fs.create_file(path, rng.randbytes(size), mode=0o644)
                own_files[i].append(path)
            elif kind == "append":
                fs.append_file(rng.choice(own_files[i]),
                               rng.randbytes(rng.randint(256, block_size)))
            elif kind == "read":
                pool = own_files[i] or shared_paths
                fs.read_file(rng.choice(pool if rng.random() < 0.7
                                        else shared_paths))
            elif kind == "stat":
                fs.getattr(rng.choice(own_files[i]))
            elif kind == "readdir":
                fs.readdir("/shared")
            elif kind == "shared_append":
                fs.append_file(rng.choice(shared_paths),
                               rng.randbytes(rng.randint(32, 256)))

        except LeaseError:
            # Another client's unexpired lease outlasted our patience
            # (or took our lease over mid-mutation): a contention
            # outcome, not a harness failure.  The journal keeps the
            # SSP consistent either way -- fsck below proves it.
            conflicts += 1
            continue
        op_counts[kind] += 1
        latencies.append(clock.now - began)

    # -- settle and audit -----------------------------------------------------
    for fs in mounts:
        fs.unmount()
    elapsed = clock.now - start
    completed = len(latencies)
    wire_requests = sum(fs.request_count - before
                        for fs, before in zip(mounts, mount_requests))
    report = VolumeAuditor(volume).audit()

    return {
        "clients": clients,
        "ops_per_client": ops_per_client,
        "seed": seed,
        "concurrency": concurrency,
        "attempted": len(schedule),
        "completed": completed,
        "lease_conflicts": conflicts,
        "op_counts": op_counts,
        "sim_seconds": elapsed,
        "ops_per_sec": (completed / elapsed) if elapsed else 0.0,
        "latency_s": Percentiles.from_values(latencies).as_dict(),
        "wire_requests": wire_requests,
        "fsck_clean": report.clean,
        "fsck_errors": (len(report.integrity_errors)
                        + len(report.structural_errors)),
    }
