"""Workload generators and harnesses for every figure in the paper."""

from .andrew import (COMPILE_CPU_SECONDS, PAPER_FIG12,
                     PAPER_FIG12_OVERHEADS, PHASES, AndrewResult, run_andrew)
from .createlist import PAPER_FIG9, CreateListResult, run_create_and_list
from .opcosts import (OPERATIONS, PAPER_FIG13_ANCHORS, OpCost, run_op_costs)
from .postmark import (FIG10_CACHE_FRACTIONS, FIG10_IMPLS,
                       PAPER_FIG10_ANCHORS, PostmarkResult, dataset_bytes,
                       run_postmark)
from .report import (ComparisonRow, fmt_seconds, format_comparison,
                     format_table, overhead_pct)
from .runner import (IMPLEMENTATIONS, LABELS, OBSERVED_WORKLOADS, BenchEnv,
                     make_env, run_observed, run_traced)
from .trace import (Trace, TraceOp, replay_timed,
                    synthesize_office_trace)

__all__ = [
    "make_env",
    "run_observed",
    "run_traced",
    "BenchEnv",
    "IMPLEMENTATIONS",
    "LABELS",
    "OBSERVED_WORKLOADS",
    "run_create_and_list",
    "CreateListResult",
    "PAPER_FIG9",
    "run_postmark",
    "PostmarkResult",
    "FIG10_IMPLS",
    "FIG10_CACHE_FRACTIONS",
    "PAPER_FIG10_ANCHORS",
    "dataset_bytes",
    "run_andrew",
    "AndrewResult",
    "PHASES",
    "PAPER_FIG12",
    "PAPER_FIG12_OVERHEADS",
    "COMPILE_CPU_SECONDS",
    "run_op_costs",
    "OpCost",
    "OPERATIONS",
    "PAPER_FIG13_ANCHORS",
    "ComparisonRow",
    "format_comparison",
    "format_table",
    "fmt_seconds",
    "overhead_pct",
    "Trace",
    "TraceOp",
    "replay_timed",
    "synthesize_office_trace",
]
