"""Create-and-List microbenchmark (paper Figure 9).

Measures the core metadata encryption/decryption costs: the create phase
makes 500 empty files across 25 directories, the list phase performs a
recursive ``ls -lR`` (stat of every file and directory).

Files are created owner-only (a single CAP replica), matching the paper's
single-user microbenchmark; the Andrew benchmark exercises the multi-CAP
create path instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.costmodel import CostModel
from .runner import BenchEnv, flush_client

#: Published results (seconds), transcribed from Figure 9.
PAPER_FIG9 = {
    "no-enc-md-d": {"create": 121.0, "list": 60.0},
    "no-enc-md": {"create": 127.0, "list": 60.0},
    "sharoes": {"create": 131.0, "list": 63.0},
    "public": {"create": 245.0, "list": 2253.0},
    "pub-opt": {"create": 159.0, "list": 196.0},
}


@dataclass
class CreateListResult:
    impl: str
    create_seconds: float
    list_seconds: float
    files: int
    dirs: int


def run_create_and_list(env: BenchEnv, files: int = 500,
                        dirs: int = 25) -> CreateListResult:
    """Run both phases; returns simulated seconds per phase."""
    fs, cost = env.fs, env.cost
    per_dir = files // dirs

    start = cost.clock.now
    for d in range(dirs):
        fs.mkdir(f"/dir{d:03d}", mode=0o700)
        for f in range(per_dir):
            fs.mknod(f"/dir{d:03d}/file{f:03d}", mode=0o600)
    flush_client(fs)
    create_seconds = cost.clock.now - start

    # The list phase models a fresh `ls -lR` pass: everything created
    # above must be fetched and decrypted again, so the client cache is
    # dropped (as if freshly mounted).
    fs.cache.clear()
    start = cost.clock.now
    _recursive_list(fs, cost)
    list_seconds = cost.clock.now - start

    return CreateListResult(impl=env.impl, create_seconds=create_seconds,
                            list_seconds=list_seconds,
                            files=dirs * per_dir, dirs=dirs)


def _recursive_list(fs, cost: CostModel) -> int:
    """``ls -lR /``: readdir + stat every entry, recursively.

    Metadata caching means each object is decrypted once, exactly like
    the real benchmark's single pass.
    """
    stats = 0
    pending = ["/"]
    while pending:
        path = pending.pop()
        for name in fs.readdir(path):
            child = path.rstrip("/") + "/" + name
            st = fs.getattr(child)
            stats += 1
            if st.ftype == "dir":
                pending.append(child)
    return stats
