"""The SHAROES migration tool (paper section IV, first component).

Transitions an existing local filesystem to the outsourced model: walks
the local tree, mints the complete cryptographic structure (per-object
keys, per-selector metadata replicas, CAP-styled directory-table views,
split-point lockboxes, per-user superblocks) and performs the bulk upload
to the SSP.

Because migration runs inside the enterprise trust domain, it may act on
behalf of every owner at once -- that is exactly why the paper's
"seamless transition without significant user involvement" is possible.

Bulk-transfer economics: the tool batches uploads (amortizing round
trips) and optionally models compression, matching the paper's "more
efficient bulk data transfers" remark.  Costs are charged to an optional
:class:`~repro.sim.costmodel.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..caps.model import VIEW_NONE, cap_for_bits
from ..caps.record import ObjectRecord, lockbox_payload
from ..crypto.provider import CryptoProvider
from ..errors import MigrationError, UnsupportedPermission
from ..fs.dirtable import SPLIT, DirEntry, DirPointer, TableView
from ..fs.metadata import MetadataAttrs
from ..fs.permissions import DIRECTORY, EXEC, FILE, READ, WRITE
from ..fs.sealed import bind_context, seal_and_sign
from ..fs.volume import SharoesVolume, block_blob_id, table_blob_id
from ..sim.costmodel import CostModel
from ..storage.blobs import lockbox_blob, meta_blob
from .localfs import LocalNode, LocalTree

_BATCH_SIZE = 100
_REQUEST_HEADER_BYTES = 64


def degrade_bits(bits: int, ftype: str) -> int:
    """Nearest weaker supported permission for an unsupported triple.

    Directories: -wx loses the write bit (--x).  Files: any write or
    exec without read collapses to no access (the symmetric-DEK
    restriction of paper sections III-A/B).
    """
    r, w, x = bits & READ, bits & WRITE, bits & EXEC
    if ftype == DIRECTORY:
        if w and x and not r:
            return x
        return bits
    if not r:
        return 0
    return bits


def degrade_mode(mode: int, ftype: str) -> int:
    out = 0
    for shift in (6, 3, 0):
        out |= degrade_bits((mode >> shift) & 0o7, ftype) << shift
    return out


@dataclass
class MigrationReport:
    """What the migration did, for the operator's eyes."""

    directories: int = 0
    files: int = 0
    data_bytes: int = 0
    uploaded_bytes: int = 0
    blobs: int = 0
    replicas: int = 0
    lockboxes: int = 0
    splits: int = 0
    superblocks: int = 0
    warnings: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"migrated {self.directories} dirs / {self.files} files "
                f"({self.data_bytes} B data) -> {self.blobs} blobs, "
                f"{self.replicas} metadata replicas, {self.lockboxes} "
                f"lockboxes, {self.splits} split rows, "
                f"{self.superblocks} superblocks; "
                f"{len(self.warnings)} warnings")


class MigrationTool:
    """Transitions a :class:`LocalTree` onto a fresh SHAROES volume."""

    def __init__(self, volume: SharoesVolume,
                 provider: CryptoProvider | None = None,
                 cost_model: CostModel | None = None,
                 strict_permissions: bool = True,
                 compression_ratio: float = 1.0):
        if volume.formatted:
            raise MigrationError("migration needs an unformatted volume")
        if not 0.0 < compression_ratio <= 1.0:
            raise MigrationError("compression_ratio must be in (0, 1]")
        self.volume = volume
        self.provider = provider or CryptoProvider(volume.engine)
        self.cost = cost_model
        if cost_model is not None:
            self.provider.add_listener(cost_model.on_crypto_event)
        self.strict = strict_permissions
        self.compression_ratio = compression_ratio
        self._pending_batch_bytes = 0
        self._batch_count = 0
        self.report = MigrationReport()

    # -- upload accounting ---------------------------------------------------

    def _upload(self, blob_id, payload: bytes, compressible: bool) -> None:
        self.volume.server.put(blob_id, payload)
        self.report.blobs += 1
        self.report.uploaded_bytes += len(payload)
        if self.cost is None:
            return
        wire = len(payload)
        if compressible:
            wire = int(wire * self.compression_ratio)
        self._pending_batch_bytes += wire + _REQUEST_HEADER_BYTES
        self._batch_count += 1
        if self._batch_count >= _BATCH_SIZE:
            self._flush_batch()

    def _flush_batch(self) -> None:
        if self.cost is not None and self._batch_count:
            self.cost.charge_request(self._pending_batch_bytes, 16)
        self._pending_batch_bytes = 0
        self._batch_count = 0

    # -- permission preparation -----------------------------------------------

    def _prepare_mode(self, path: str, node: LocalNode) -> int:
        mode = node.mode
        for shift in (6, 3, 0):
            bits = (mode >> shift) & 0o7
            try:
                cap_for_bits(bits, node.ftype)
            except UnsupportedPermission as exc:
                if self.strict:
                    raise MigrationError(f"{path}: {exc}") from exc
                degraded = degrade_mode(mode, node.ftype)
                self.report.warnings.append(
                    f"{path}: degraded mode {mode:o} -> {degraded:o} "
                    f"(unsupported in SHAROES)")
                return degraded
        return mode

    # -- tree construction ---------------------------------------------------------

    def migrate(self, tree: LocalTree) -> MigrationReport:
        """Run the transition; returns the report."""
        scheme = self.volume.scheme
        root_record = self._build_node("/", tree.root)
        self.volume.root_inode = root_record.attrs.inode
        self.volume._root_record = root_record
        self.report.superblocks = self.volume.write_superblocks(
            self.provider, root_record)
        self._flush_batch()
        if scheme.name == "scheme1":
            # Scheme-1 has no shared replicas, hence its storage cost.
            pass
        return self.report

    def _build_node(self, path: str, node: LocalNode) -> ObjectRecord:
        mode = self._prepare_mode(path, node)
        inode = self.volume.allocator.allocate()
        attrs = MetadataAttrs(inode=inode, ftype=node.ftype,
                              owner=node.owner, group=node.group,
                              mode=mode, acl=node.acl,
                              size=len(node.content))
        scheme = self.volume.scheme
        record = ObjectRecord.create(attrs, scheme.selectors(attrs),
                                     self.volume.signature_prime_bits)
        if node.is_dir():
            self.report.directories += 1
            children = {
                name: self._build_node(
                    path.rstrip("/") + "/" + name, child)
                for name, child in sorted(node.children.items())}
            self._write_tables(record, children)
        else:
            self.report.files += 1
            self.report.data_bytes += len(node.content)
            self._write_file_blocks(record, node.content)
        self._write_replicas(record)
        self._maybe_write_lockboxes(record)
        return record

    def _write_replicas(self, record: ObjectRecord) -> None:
        scheme = self.volume.scheme
        attrs = record.attrs
        owner_selector = scheme.owner_selector(attrs)
        for selector in scheme.selectors(attrs):
            cap = scheme.cap_for_selector(attrs, selector)
            blob = record.metadata_blob(self.provider, selector, cap,
                                        selector == owner_selector)
            self._upload(meta_blob(attrs.inode, selector), blob,
                         compressible=False)
            self.report.replicas += 1

    def _write_file_blocks(self, record: ObjectRecord,
                           content: bytes) -> None:
        attrs = record.attrs
        block_size = self.volume.block_size
        blocks = ([content[i:i + block_size]
                   for i in range(0, len(content), block_size)]
                  if content else [])
        attrs.block_count = len(blocks)
        for index, block in enumerate(blocks):
            payload = block
            if index == 0:
                payload = len(blocks).to_bytes(4, "big") + block
            context = bind_context("data", attrs.inode, f"b{index}")
            blob = seal_and_sign(self.provider, record.dek, record.dsk,
                                 context, payload)
            self._upload(block_blob_id(attrs.inode, index), blob,
                         compressible=True)

    def _write_tables(self, record: ObjectRecord,
                      children: dict[str, ObjectRecord]) -> None:
        scheme = self.volume.scheme
        attrs = record.attrs
        for selector in scheme.selectors(attrs):
            style = self.volume.table_style(attrs, selector)
            if style == VIEW_NONE:
                continue
            dek = record.table_deks[selector]
            view = TableView.build(style, [], provider=self.provider,
                                   table_dek=dek)
            for name, child in sorted(children.items()):
                kind, child_selector = scheme.child_pointer(
                    attrs, child.attrs, selector)
                if kind == SPLIT:
                    self.report.splits += 1
                    # Split discovered at the parent: the child's keys go
                    # out through per-user lockboxes (paper III-D).
                    self._write_lockboxes_for(child)
                    entry = DirEntry(name=name, inode=child.attrs.inode,
                                     kind=SPLIT)
                elif child_selector is None:
                    entry = DirEntry(name=name, inode=child.attrs.inode,
                                     kind="z")
                else:
                    entry = DirEntry(
                        name=name, inode=child.attrs.inode, kind="d",
                        pointer=DirPointer(
                            selector=child_selector,
                            mek=child.selector_meks[child_selector],
                            mvk=child.mvk.to_bytes()))
                view.add(entry, provider=self.provider, table_dek=dek)
            context = bind_context("table", attrs.inode, selector)
            blob = seal_and_sign(self.provider, dek, record.dsk, context,
                                 view.to_bytes())
            self._upload(table_blob_id(attrs.inode, selector), blob,
                         compressible=False)

    def _maybe_write_lockboxes(self, record: ObjectRecord) -> None:
        """ACL entries always need lockboxes, split or not."""
        if record.attrs.acl:
            self._write_lockboxes_for(record)

    def _write_lockboxes_for(self, record: ObjectRecord) -> None:
        if not self.volume.scheme.supports_splits():
            return
        inode = record.attrs.inode
        done: set[int] = getattr(self, "_lockboxed", set())
        self._lockboxed = done
        if inode in done:
            return
        done.add(inode)
        for user_id, selector in self.volume.scheme.lockbox_map(
                record.attrs).items():
            public = self.volume.registry.directory.user_key(user_id)
            payload = lockbox_payload(selector,
                                      record.selector_meks[selector],
                                      record.mvk.to_bytes())
            self._upload(lockbox_blob(inode, user_id),
                         self.provider.pk_encrypt(public, payload),
                         compressible=False)
            self.report.lockboxes += 1
