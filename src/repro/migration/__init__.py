"""Migration tool: transition local storage to the outsourced model."""

from .localfs import LocalNode, LocalTree, make_enterprise_tree
from .migrate import (MigrationReport, MigrationTool, degrade_bits,
                      degrade_mode)

__all__ = [
    "LocalTree",
    "LocalNode",
    "make_enterprise_tree",
    "MigrationTool",
    "MigrationReport",
    "degrade_bits",
    "degrade_mode",
]
