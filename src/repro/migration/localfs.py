"""In-memory model of pre-outsourcing local enterprise storage.

The migration tool's input: a *nix filesystem tree with ownership, modes
and ACLs.  Also provides a deterministic synthetic enterprise-tree
generator used by tests and the Scheme-1 vs Scheme-2 storage ablation
(the paper's million-file cost estimate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import FileExists, FileNotFound, MigrationError, NotADirectory
from ..fs import path as fspath
from ..fs.permissions import DIRECTORY, FILE, AclEntry


@dataclass
class LocalNode:
    """One file or directory in the local tree."""

    name: str
    ftype: str
    owner: str
    group: str
    mode: int
    content: bytes = b""
    acl: tuple[AclEntry, ...] = ()
    children: dict[str, "LocalNode"] = field(default_factory=dict)

    def is_dir(self) -> bool:
        return self.ftype == DIRECTORY


class LocalTree:
    """A rooted local filesystem tree."""

    def __init__(self, root_owner: str, root_group: str,
                 root_mode: int = 0o755):
        self.root = LocalNode(name="/", ftype=DIRECTORY, owner=root_owner,
                              group=root_group, mode=root_mode)

    def _lookup(self, path: str) -> LocalNode:
        node = self.root
        for name in fspath.split_path(path):
            if not node.is_dir():
                raise NotADirectory(path)
            try:
                node = node.children[name]
            except KeyError:
                raise FileNotFound(path) from None
        return node

    def _parent(self, path: str) -> tuple[LocalNode, str]:
        parent_path, name = fspath.parent_and_name(path)
        parent = self._lookup(parent_path)
        if not parent.is_dir():
            raise NotADirectory(parent_path)
        if name in parent.children:
            raise FileExists(path)
        return parent, name

    def add_dir(self, path: str, owner: str, group: str,
                mode: int = 0o755,
                acl: tuple[AclEntry, ...] = ()) -> LocalNode:
        parent, name = self._parent(path)
        node = LocalNode(name=name, ftype=DIRECTORY, owner=owner,
                         group=group, mode=mode, acl=acl)
        parent.children[name] = node
        return node

    def add_file(self, path: str, content: bytes, owner: str, group: str,
                 mode: int = 0o644,
                 acl: tuple[AclEntry, ...] = ()) -> LocalNode:
        parent, name = self._parent(path)
        node = LocalNode(name=name, ftype=FILE, owner=owner, group=group,
                         mode=mode, content=content, acl=acl)
        parent.children[name] = node
        return node

    def get(self, path: str) -> LocalNode:
        return self._lookup(path)

    def walk(self) -> Iterator[tuple[str, LocalNode]]:
        """Pre-order traversal of (absolute path, node)."""
        stack = [("/", self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for name in sorted(node.children, reverse=True):
                child = node.children[name]
                child_path = path.rstrip("/") + "/" + name
                stack.append((child_path, child))

    def count(self) -> tuple[int, int]:
        """(directories, files) in the tree."""
        dirs = files = 0
        for _, node in self.walk():
            if node.is_dir():
                dirs += 1
            else:
                files += 1
        return dirs, files

    def total_bytes(self) -> int:
        return sum(len(node.content) for _, node in self.walk()
                   if not node.is_dir())


def make_enterprise_tree(users: list[str], group: str,
                         dirs_per_user: int = 3,
                         files_per_dir: int = 5,
                         file_bytes: int = 2048,
                         exec_only_fraction: float = 0.3,
                         seed: int = 7) -> LocalTree:
    """Synthetic enterprise home-directory tree.

    Layout models what the paper's privacy study [13] observed: per-user
    home subtrees (ownership clusters), a shared group area, and a
    substantial fraction of exec-only directories.
    """
    if not users:
        raise MigrationError("need at least one user")
    rng = random.Random(seed)
    admin = users[0]
    tree = LocalTree(root_owner=admin, root_group=group)
    tree.add_dir("/home", owner=admin, group=group, mode=0o755)
    tree.add_dir("/shared", owner=admin, group=group, mode=0o775)
    for user in users:
        home_mode = 0o711 if rng.random() < exec_only_fraction else 0o755
        tree.add_dir(f"/home/{user}", owner=user, group=group,
                     mode=home_mode)
        for d in range(dirs_per_user):
            dpath = f"/home/{user}/dir{d}"
            tree.add_dir(dpath, owner=user, group=group, mode=0o755)
            for f in range(files_per_dir):
                mode = rng.choice((0o644, 0o640, 0o600, 0o664))
                content = rng.randbytes(rng.randint(64, file_bytes))
                tree.add_file(f"{dpath}/file{f}.dat", content,
                              owner=user, group=group, mode=mode)
    for f in range(files_per_dir):
        owner = rng.choice(users)
        tree.add_file(f"/shared/common{f}.dat",
                      rng.randbytes(rng.randint(64, file_bytes)),
                      owner=owner, group=group, mode=0o664)
    return tree
