"""SHAROES reproduction: data sharing over outsourced enterprise storage.

A from-scratch Python implementation of *"SHAROES: A Data Sharing Platform
for Outsourced Enterprise Storage Environments"* (Singh & Liu, ICDE 2008):
the full cryptographic substrate (AES, RSA, ESIGN, KDFs), the untrusted-SSP
storage model, the CAP-based *nix access control design, the two metadata
replication schemes, the migration tool, the four baseline comparators and
the complete benchmark harness for every figure in the paper's evaluation.

Quickstart::

    from repro import (PrincipalRegistry, StorageServer, SharoesVolume,
                       SharoesFilesystem)

    registry = PrincipalRegistry()
    alice = registry.create_user("alice")
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")

    fs = SharoesFilesystem(volume, alice)
    fs.mount()
    fs.mkdir("/projects")
    fs.create_file("/projects/plan.txt", b"ship it", mode=0o640)
    print(fs.read_file("/projects/plan.txt"))
"""

from .errors import (BlobNotFound, CircuitOpenError, CryptoError,
                     DirectoryNotEmpty, FileExists, FileNotFound,
                     FilesystemError, IntegrityError, IsADirectory,
                     KeyAccessError, MigrationError, NotADirectory,
                     PermissionDenied, SharoesError, StorageError,
                     TransientStorageError, UnsupportedPermission)
from .fs import (AclEntry, ClientConfig, SharoesFilesystem, SharoesVolume,
                 Stat, format_mode, parse_mode)
from .principals import (Group, GroupKeyService, PrincipalRegistry, User,
                         UserAgent)
from .sim import (FREE, PAPER_2008, CostModel, CostProfile, NetworkLink,
                  SimClock)
from .storage import (FlakyServer, OutageServer, ResilientTransport,
                      RetryPolicy, RollbackServer, SlowServer,
                      StorageServer, TamperingServer)

__version__ = "1.0.0"

__all__ = [
    "SharoesFilesystem",
    "SharoesVolume",
    "ClientConfig",
    "Stat",
    "AclEntry",
    "format_mode",
    "parse_mode",
    "PrincipalRegistry",
    "User",
    "Group",
    "UserAgent",
    "GroupKeyService",
    "StorageServer",
    "TamperingServer",
    "RollbackServer",
    "FlakyServer",
    "SlowServer",
    "OutageServer",
    "ResilientTransport",
    "RetryPolicy",
    "CostModel",
    "CostProfile",
    "SimClock",
    "NetworkLink",
    "PAPER_2008",
    "FREE",
    "SharoesError",
    "CryptoError",
    "IntegrityError",
    "KeyAccessError",
    "FilesystemError",
    "PermissionDenied",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "UnsupportedPermission",
    "StorageError",
    "TransientStorageError",
    "CircuitOpenError",
    "BlobNotFound",
    "MigrationError",
    "__version__",
]
