"""Owner-side object records and CAP view construction.

An :class:`ObjectRecord` is the *complete* key material and attributes of
one filesystem object -- what the owner (and only the owner) can see.  The
per-selector metadata replicas stored at the SSP are filtered views of the
record: :meth:`ObjectRecord.view_for` applies a CAP to decide which key
fields each replica carries (paper Figures 4 and 5).

The record itself is never stored: the owner's own replica carries the
management keys (MSK, per-selector MEKs, per-selector table DEKs), so the
record is reconstructed from it on demand (:meth:`from_owner_view`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import esign
from ..crypto.keys import (OBJECT_SIGNATURE_PRIME_BITS, new_signature_pair,
                           new_symmetric_key)
from ..crypto.provider import CryptoProvider
from ..errors import KeyAccessError
from ..fs.metadata import MetadataAttrs, MetadataView
from ..fs.permissions import DIRECTORY, FILE
from ..fs.sealed import bind_context, open_verified, seal_and_sign
from ..serialize import Reader, Writer
from .model import Cap


@dataclass
class ObjectRecord:
    """Full (owner-grade) record of one file or directory."""

    attrs: MetadataAttrs
    #: file data key (None for directories, which use per-selector DEKs)
    dek: bytes | None
    dsk: esign.SigningKey
    dvk: esign.VerificationKey
    msk: esign.SigningKey
    mvk: esign.VerificationKey
    #: per-selector metadata encryption keys
    selector_meks: dict[str, bytes] = field(default_factory=dict)
    #: per-selector directory-table encryption keys (directories only)
    table_deks: dict[str, bytes] = field(default_factory=dict)
    needs_rekey: bool = False

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, attrs: MetadataAttrs, selectors: list[str],
               prime_bits: int = OBJECT_SIGNATURE_PRIME_BITS
               ) -> "ObjectRecord":
        """Mint all keys for a new object covering ``selectors``."""
        data_pair = new_signature_pair(prime_bits)
        meta_pair = new_signature_pair(prime_bits)
        record = cls(
            attrs=attrs,
            # Directories use per-selector table DEKs; files and
            # symlinks share one content DEK.
            dek=(None if attrs.ftype == DIRECTORY
                 else new_symmetric_key()),
            dsk=data_pair.signing,
            dvk=data_pair.verification,
            msk=meta_pair.signing,
            mvk=meta_pair.verification,
        )
        record.ensure_selector_keys(selectors)
        return record

    def ensure_selector_keys(self, selectors: list[str]) -> None:
        """Mint MEK (and table DEK for dirs) for any new selectors."""
        for selector in selectors:
            self.selector_meks.setdefault(selector, new_symmetric_key())
            if self.attrs.ftype == DIRECTORY:
                self.table_deks.setdefault(selector, new_symmetric_key())

    def drop_selectors(self, keep: list[str]) -> list[str]:
        """Remove keys for selectors not in ``keep``; returns the dropped."""
        dropped = [s for s in self.selector_meks if s not in keep]
        for selector in dropped:
            del self.selector_meks[selector]
            self.table_deks.pop(selector, None)
        return dropped

    def rekey_data(self) -> None:
        """Rotate data keys (revocation): new DEK(s) and DSK/DVK pair."""
        pair = new_signature_pair(self.dsk.prime_bits)
        self.dsk = pair.signing
        self.dvk = pair.verification
        if self.attrs.ftype != DIRECTORY:
            self.dek = new_symmetric_key()
        else:
            for selector in list(self.table_deks):
                self.table_deks[selector] = new_symmetric_key()
        self.needs_rekey = False

    def rekey_metadata(self, selectors: list[str] | None = None) -> None:
        """Rotate MEKs (and MSK/MVK).  Parent pointers must be updated."""
        pair = new_signature_pair(self.msk.prime_bits)
        self.msk = pair.signing
        self.mvk = pair.verification
        victims = selectors if selectors is not None else list(
            self.selector_meks)
        for selector in victims:
            self.selector_meks[selector] = new_symmetric_key()

    # -- views ------------------------------------------------------------------

    def view_for(self, selector: str, cap: Cap,
                 is_owner: bool) -> MetadataView:
        """The metadata replica contents for one selector.

        Non-owner replicas carry exactly the keys the CAP grants; the
        owner replica also carries the management keys.  Directory
        writers (CAPs with DSK) receive the full table-DEK map because
        adding or removing a child requires rewriting *every* view of the
        parent table.
        """
        is_dir = self.attrs.ftype == DIRECTORY
        grants_dek = cap.dek or is_owner
        grants_dvk = cap.dvk or is_owner
        grants_dsk = cap.dsk or is_owner
        if is_dir:
            dek = self.table_deks.get(selector) if grants_dek else None
            if is_owner and dek is None:
                # The owner's management view always reaches its own table.
                dek = self.table_deks.get(selector)
        else:
            dek = self.dek if grants_dek else None
        return MetadataView(
            attrs=self.attrs.copy(),
            cap_id=cap.cap_id,
            selector=selector,
            dek=dek,
            dvk=self.dvk if grants_dvk else None,
            dsk=self.dsk if grants_dsk else None,
            msk=self.msk if is_owner else None,
            selector_meks=dict(self.selector_meks) if is_owner else {},
            table_deks=(dict(self.table_deks)
                        if is_dir and (grants_dsk or is_owner) else {}),
            needs_rekey=self.needs_rekey if is_owner else False,
        )

    @classmethod
    def from_owner_view(cls, view: MetadataView,
                        mvk: esign.VerificationKey) -> "ObjectRecord":
        """Rebuild the record from the owner's replica plus its MVK.

        The MVK arrives with the pointer that led to the replica (parent
        row or superblock), since replicas are verified *with* it rather
        than carrying it.
        """
        if not view.is_owner_view:
            raise KeyAccessError(
                "only the owner's replica can reconstruct the full record")
        is_dir = view.attrs.ftype == DIRECTORY
        return cls(
            attrs=view.attrs.copy(),
            dek=None if is_dir else view.require_dek(),
            dsk=view.require_dsk(),
            dvk=view.require_dvk(),
            msk=view.require_msk(),
            mvk=mvk,
            selector_meks=dict(view.selector_meks),
            table_deks=dict(view.table_deks),
            needs_rekey=view.needs_rekey,
        )

    # -- blob building ------------------------------------------------------------

    def metadata_blob(self, provider: CryptoProvider, selector: str,
                      cap: Cap, is_owner: bool) -> bytes:
        """Seal + sign one metadata replica for storage at the SSP."""
        view = self.view_for(selector, cap, is_owner)
        context = bind_context("meta", self.attrs.inode, selector)
        return seal_and_sign(provider, self.selector_meks[selector],
                             self.msk, context, view.to_bytes())


def open_metadata_blob(provider: CryptoProvider, inode: int, selector: str,
                       mek: bytes, mvk: esign.VerificationKey,
                       blob: bytes) -> MetadataView:
    """Verify + decrypt a metadata replica fetched from the SSP."""
    context = bind_context("meta", inode, selector)
    payload = open_verified(provider, mek, mvk, context, blob)
    return MetadataView.from_bytes(payload)


# -- split-point lockboxes ------------------------------------------------------

def lockbox_payload(selector: str, mek: bytes, mvk: bytes) -> bytes:
    """Contents of a Scheme-2 split-point lockbox (paper section III-D)."""
    writer = Writer()
    writer.put_str(selector)
    writer.put_bytes(mek)
    writer.put_bytes(mvk)
    return writer.getvalue()


def parse_lockbox_payload(raw: bytes) -> tuple[str, bytes, bytes]:
    reader = Reader(raw)
    selector = reader.get_str()
    mek = reader.get_bytes()
    mvk = reader.get_bytes()
    reader.expect_end()
    return selector, mek, mvk
