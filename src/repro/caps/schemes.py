"""Metadata replication schemes (paper section III-D).

Different users hold different CAPs for the same object, so the encrypted
metadata (and directory-table) structures must be replicated.  The paper
proposes two schemes:

* **Scheme-1** -- replicate per *user*: every user has their own metadata
  tree, CAP-filtered to their permissions.  No split points ever, but
  storage and update costs scale with the user population (the paper
  estimates ~$0.60/user/month for a million-file tree at 2008 S3 prices).

* **Scheme-2** -- replicate per *CAP chain*: users with the same
  permission class share replicas.  In the classic owner/group/other
  model that is at most three chains per object (plus one per POSIX-ACL
  entry), each mapping to one of the <=5 directory / <=4 file CAP
  designs.  Where chains diverge along the tree (ownership or group
  changes, ACL grants -- the paper's *split points*), resolution falls
  back to public-key lockboxes, one per affected user.

Both schemes answer the same questions: which replicas exist for an
object (``selectors``), which replica a given user reads
(``selector_for_user``), what CAP each replica embodies
(``cap_for_selector``), and how a parent directory row should point at a
child (``child_pointer``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import SharoesError
from ..fs.dirtable import DIRECT, SPLIT, ZERO
from ..fs.metadata import MetadataAttrs
from ..fs.permissions import GROUP, OTHER, OWNER
from ..principals.registry import PrincipalRegistry, UnknownPrincipal
from ..storage.blobs import principal_hash
from .model import Cap, cap_for_bits

#: Scheme-2 selector names for the classic permission classes.
SEL_OWNER = "o"
SEL_GROUP = "g"
SEL_WORLD = "w"


class ReplicationScheme(ABC):
    """Strategy for mapping principals to metadata replicas."""

    name: str

    def __init__(self, registry: PrincipalRegistry):
        self.registry = registry

    # -- principal helpers ---------------------------------------------------

    def _groups_of(self, user_id: str) -> set[str]:
        try:
            return self.registry.user(user_id).groups
        except UnknownPrincipal:
            return set()

    def _class_of(self, attrs: MetadataAttrs, user_id: str) -> str:
        return attrs.perms().class_of(user_id, self._groups_of(user_id))

    def _cap_of_class(self, attrs: MetadataAttrs, perm_class: str) -> Cap:
        bits = attrs.perms().bits_for_class(perm_class)
        return cap_for_bits(bits, attrs.ftype)

    # -- the scheme interface ---------------------------------------------------

    @abstractmethod
    def selector_for_user(self, attrs: MetadataAttrs,
                          user_id: str) -> str:
        """Which replica selector this user should read for this object."""

    @abstractmethod
    def owner_selector(self, attrs: MetadataAttrs) -> str:
        """The owner's (management) replica selector."""

    @abstractmethod
    def selectors(self, attrs: MetadataAttrs) -> list[str]:
        """Replicas to materialize, owner's first.

        Zero-permission chains still get a replica: per the paper's
        Figure 4/5, the zero CAP is a metadata object with every key
        field inaccessible -- holders can stat (see owner/perms/size,
        as in *nix) but can neither read, write nor traverse.
        """

    @abstractmethod
    def cap_for_selector(self, attrs: MetadataAttrs, selector: str) -> Cap:
        """The CAP design a replica embodies."""

    @abstractmethod
    def users_of_selector(self, attrs: MetadataAttrs,
                          selector: str) -> set[str]:
        """All registry users whose class maps to this selector."""

    @abstractmethod
    def supports_splits(self) -> bool:
        """Whether rows can require lockbox resolution."""

    def cap_for_user(self, attrs: MetadataAttrs, user_id: str) -> Cap:
        """Effective CAP of a user on an object (for honest-client checks)."""
        return self._cap_of_class(attrs, self._class_of(attrs, user_id))

    def child_pointer(self, parent_attrs: MetadataAttrs,
                      child_attrs: MetadataAttrs,
                      parent_selector: str) -> tuple[str, str | None]:
        """How the parent's ``parent_selector`` view should point at a child.

        Returns ``(kind, child_selector)`` where kind is DIRECT (all users
        of the parent view share one child replica), SPLIT (they diverge:
        resolve through lockboxes), or ZERO (no access for this chain).
        """
        users = self.users_of_selector(parent_attrs, parent_selector)
        materialized = set(self.selectors(child_attrs))
        if not users:
            # Vacuous chain (e.g. an empty group): keep a structurally
            # sensible pointer so future members resolve correctly.
            candidate = self._structural_child_selector(
                parent_attrs, child_attrs, parent_selector)
            if candidate is None:
                return SPLIT if self.supports_splits() else ZERO, None
            if candidate not in materialized:
                return ZERO, None
            return DIRECT, candidate
        child_selectors = {self.selector_for_user(child_attrs, u)
                           for u in users}
        if len(child_selectors) > 1:
            if not self.supports_splits():
                raise SharoesError(
                    f"scheme {self.name} cannot split, yet users of "
                    f"{parent_selector!r} diverge on inode "
                    f"{child_attrs.inode}")
            return SPLIT, None
        selector = child_selectors.pop()
        if selector not in materialized:
            return ZERO, None
        return DIRECT, selector

    def _structural_child_selector(self, parent_attrs: MetadataAttrs,
                                   child_attrs: MetadataAttrs,
                                   parent_selector: str) -> str | None:
        """Default child selector for a chain with no current users."""
        return None

    def lockbox_map(self, attrs: MetadataAttrs) -> dict[str, str]:
        """user -> selector for everyone needing a lockbox on this object."""
        return {}


class Scheme2(ReplicationScheme):
    """Per-CAP-chain replication with split-point lockboxes (the default)."""

    name = "scheme2"

    def selector_for_user(self, attrs: MetadataAttrs, user_id: str) -> str:
        perm_class = self._class_of(attrs, user_id)
        if perm_class == OWNER:
            return SEL_OWNER
        if perm_class == GROUP:
            return SEL_GROUP
        if perm_class == OTHER:
            return SEL_WORLD
        # acl:<uid>
        return "a:" + principal_hash(perm_class[4:])

    def owner_selector(self, attrs: MetadataAttrs) -> str:
        return SEL_OWNER

    def selectors(self, attrs: MetadataAttrs) -> list[str]:
        out = [SEL_OWNER, SEL_GROUP, SEL_WORLD]
        for entry in attrs.perms().acl:
            cap_for_bits(entry.bits, attrs.ftype)  # validate
            out.append("a:" + principal_hash(entry.user_id))
        return out

    def cap_for_selector(self, attrs: MetadataAttrs, selector: str) -> Cap:
        if selector == SEL_OWNER:
            return self._cap_of_class(attrs, OWNER)
        if selector == SEL_GROUP:
            return self._cap_of_class(attrs, GROUP)
        if selector == SEL_WORLD:
            return self._cap_of_class(attrs, OTHER)
        if selector.startswith("a:"):
            for entry in attrs.acl:
                if "a:" + principal_hash(entry.user_id) == selector:
                    return cap_for_bits(entry.bits, attrs.ftype)
        raise SharoesError(f"no CAP for selector {selector!r} on inode "
                           f"{attrs.inode}")

    def users_of_selector(self, attrs: MetadataAttrs,
                          selector: str) -> set[str]:
        return {user.user_id for user in self.registry.users()
                if self.selector_for_user(attrs, user.user_id) == selector}

    def supports_splits(self) -> bool:
        return True

    def _structural_child_selector(self, parent_attrs: MetadataAttrs,
                                   child_attrs: MetadataAttrs,
                                   parent_selector: str) -> str | None:
        if parent_selector == SEL_OWNER:
            return (SEL_OWNER
                    if parent_attrs.owner == child_attrs.owner else None)
        if parent_selector == SEL_GROUP:
            return (SEL_GROUP
                    if parent_attrs.group == child_attrs.group else None)
        if parent_selector == SEL_WORLD:
            return SEL_WORLD
        return None

    def lockbox_map(self, attrs: MetadataAttrs) -> dict[str, str]:
        materialized = set(self.selectors(attrs))
        out = {}
        for user in self.registry.users():
            selector = self.selector_for_user(attrs, user.user_id)
            if selector in materialized:
                out[user.user_id] = selector
        return out


class Scheme1(ReplicationScheme):
    """Per-user replication: a private CAP-filtered tree for every user."""

    name = "scheme1"

    def _user_selector(self, user_id: str) -> str:
        return "u:" + principal_hash(user_id)

    def selector_for_user(self, attrs: MetadataAttrs, user_id: str) -> str:
        return self._user_selector(user_id)

    def owner_selector(self, attrs: MetadataAttrs) -> str:
        return self._user_selector(attrs.owner)

    def selectors(self, attrs: MetadataAttrs) -> list[str]:
        out = [self.owner_selector(attrs)]
        for user in self.registry.users():
            if user.user_id != attrs.owner:
                out.append(self._user_selector(user.user_id))
        return out

    def cap_for_selector(self, attrs: MetadataAttrs, selector: str) -> Cap:
        for user in self.registry.users():
            if self._user_selector(user.user_id) == selector:
                return self.cap_for_user(attrs, user.user_id)
        raise SharoesError(f"selector {selector!r} matches no known user")

    def users_of_selector(self, attrs: MetadataAttrs,
                          selector: str) -> set[str]:
        return {user.user_id for user in self.registry.users()
                if self._user_selector(user.user_id) == selector}

    def supports_splits(self) -> bool:
        return False


def make_scheme(name: str, registry: PrincipalRegistry) -> ReplicationScheme:
    """Factory by name ('scheme1' or 'scheme2')."""
    if name == Scheme1.name:
        return Scheme1(registry)
    if name == Scheme2.name:
        return Scheme2(registry)
    raise SharoesError(f"unknown replication scheme {name!r}")
