"""Cryptographic Access control Primitives and replication schemes."""

from .model import (ALL_CAPS, D_EXEC_ONLY, D_READ, D_READ_EXEC, D_RWX,
                    D_ZERO, DIRECTORY_CAPS, F_READ, F_READ_WRITE, F_ZERO,
                    FILE_CAPS, VIEW_FULL, VIEW_HIDDEN, VIEW_NAMES,
                    VIEW_NONE, Cap, cap_for_bits, supported_bits)
from .record import (ObjectRecord, lockbox_payload, open_metadata_blob,
                     parse_lockbox_payload)
from .schemes import (SEL_GROUP, SEL_OWNER, SEL_WORLD, ReplicationScheme,
                      Scheme1, Scheme2, make_scheme)

__all__ = [
    "Cap",
    "cap_for_bits",
    "supported_bits",
    "ALL_CAPS",
    "DIRECTORY_CAPS",
    "FILE_CAPS",
    "D_ZERO",
    "D_READ",
    "D_READ_EXEC",
    "D_RWX",
    "D_EXEC_ONLY",
    "F_ZERO",
    "F_READ",
    "F_READ_WRITE",
    "VIEW_FULL",
    "VIEW_NAMES",
    "VIEW_HIDDEN",
    "VIEW_NONE",
    "ObjectRecord",
    "open_metadata_blob",
    "lockbox_payload",
    "parse_lockbox_payload",
    "ReplicationScheme",
    "Scheme1",
    "Scheme2",
    "make_scheme",
    "SEL_OWNER",
    "SEL_GROUP",
    "SEL_WORLD",
]
