"""Cryptographic Access control Primitives (CAPs).

A CAP replicates one *nix permission setting purely through *key
accessibility* (paper section III).  This module defines the CAP catalogue
-- which key fields each permission combination exposes -- and the mapping
from raw rwx bits to CAPs, including the paper's collapse rules:

Directories (Figure 4):

===========  ==============  =========================================
bits         CAP             rationale
===========  ==============  =========================================
``---``      D_ZERO          nothing accessible
``r--``      D_READ          DEK+DVK; table shows *names only*
``rw-``      D_READ          write is useless without exec
``r-x``      D_READ_EXEC     DEK+DVK; full table (inode+MEK+MVK)
``rwx``      D_RWX           adds DSK (may modify the table)
``-w-``      D_ZERO          write is useless without exec
``--x``      D_EXEC_ONLY     DEK+DVK; table rows encrypted per-name
``-wx``      *unsupported*   symmetric DEK => writers can read
===========  ==============  =========================================

Files (Figure 5):

===========  ==============  =========================================
``---``      F_ZERO
``r--``      F_READ          DEK+DVK
``rw-``      F_READ_WRITE    adds DSK
``r-x``      F_READ          client executes after decrypting
``rwx``      F_READ_WRITE
``-w-/-wx``  *unsupported*   symmetric DEK => writers can read
``--x``      *unsupported*   no SSP model can run an unreadable file
===========  ==============  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnsupportedPermission
from ..fs.permissions import DIRECTORY, EXEC, FILE, READ, SYMLINK, WRITE

# -- table view styles --------------------------------------------------------

#: Full directory table: name, inode, MEK, MVK all visible.
VIEW_FULL = "full"
#: Names-only table (read permission without exec).
VIEW_NAMES = "names"
#: Exec-only table: name column removed; (inode, MEK, MVK) encrypted
#: row-wise under a key derived from the child's name.
VIEW_HIDDEN = "hidden"
#: No table access at all.
VIEW_NONE = "none"


@dataclass(frozen=True)
class Cap:
    """One CAP design: which keys are accessible, and the table view."""

    cap_id: str
    ftype: str
    #: data encryption key accessible (read the data / decrypt the table)
    dek: bool
    #: data verification key accessible (verify writers)
    dvk: bool
    #: data signing key accessible (authorized writer)
    dsk: bool
    #: directory-table view style (directories only)
    table_view: str

    @property
    def grants_read(self) -> bool:
        return self.dek

    @property
    def grants_write(self) -> bool:
        return self.dsk

    def __str__(self) -> str:
        return self.cap_id


D_ZERO = Cap("d0", DIRECTORY, dek=False, dvk=False, dsk=False,
             table_view=VIEW_NONE)
D_READ = Cap("dr", DIRECTORY, dek=True, dvk=True, dsk=False,
             table_view=VIEW_NAMES)
D_READ_EXEC = Cap("drx", DIRECTORY, dek=True, dvk=True, dsk=False,
                  table_view=VIEW_FULL)
D_RWX = Cap("drwx", DIRECTORY, dek=True, dvk=True, dsk=True,
            table_view=VIEW_FULL)
D_EXEC_ONLY = Cap("dx", DIRECTORY, dek=True, dvk=True, dsk=False,
                  table_view=VIEW_HIDDEN)

F_ZERO = Cap("f0", FILE, dek=False, dvk=False, dsk=False,
             table_view=VIEW_NONE)
F_READ = Cap("fr", FILE, dek=True, dvk=True, dsk=False,
             table_view=VIEW_NONE)
F_READ_WRITE = Cap("frw", FILE, dek=True, dvk=True, dsk=True,
                   table_view=VIEW_NONE)

#: Every CAP, by id.  The paper counts "five unique CAPs per directory and
#: four per file" (including the zero CAP in both counts).
ALL_CAPS = {cap.cap_id: cap for cap in (
    D_ZERO, D_READ, D_READ_EXEC, D_RWX, D_EXEC_ONLY,
    F_ZERO, F_READ, F_READ_WRITE)}

DIRECTORY_CAPS = [c for c in ALL_CAPS.values() if c.ftype == DIRECTORY]
FILE_CAPS = [c for c in ALL_CAPS.values() if c.ftype == FILE]


def cap_for_bits(bits: int, ftype: str, strict: bool = True) -> Cap:
    """Map raw rwx ``bits`` to the CAP that realizes them.

    ``strict=False`` degrades unsupported combinations to the nearest
    *weaker* supported CAP (dropping the write bit) instead of raising --
    the migration tool uses this for lenient transitions.
    """
    r, w, x = bool(bits & READ), bool(bits & WRITE), bool(bits & EXEC)
    if ftype == SYMLINK:
        ftype = FILE  # links are CAP-wise files holding their target
    if ftype == DIRECTORY:
        if r and w and x:
            return D_RWX
        if r and x:
            return D_READ_EXEC
        if r:
            return D_READ  # rw- collapses: write is useless without exec
        if w and x:
            if strict:
                raise UnsupportedPermission(
                    "-wx on a directory cannot be expressed with symmetric "
                    "DEKs (the writer could read); see paper section III-A")
            return D_EXEC_ONLY
        if x:
            return D_EXEC_ONLY
        return D_ZERO  # --- and -w- (write useless without exec)
    if ftype == FILE:
        if r and w:
            return F_READ_WRITE  # rwx collapses to rw
        if r:
            return F_READ  # r-x collapses to r
        if w:
            if strict:
                raise UnsupportedPermission(
                    "write-only files cannot be expressed with symmetric "
                    "DEKs (the writer could read); see paper section III-B")
            return F_ZERO
        if x:
            if strict:
                raise UnsupportedPermission(
                    "exec-only files are impossible in any outsourced "
                    "storage model (execution implies reading)")
            return F_ZERO
        return F_ZERO
    raise ValueError(f"unknown ftype {ftype!r}")


def supported_bits(bits: int, ftype: str) -> bool:
    """True if the rwx combination is expressible in SHAROES."""
    try:
        cap_for_bits(bits, ftype, strict=True)
    except UnsupportedPermission:
        return False
    return True
