"""ESIGN: fast asymmetric signatures over n = p**2 * q.

The paper (footnote 3) points out that RSA can be used for the DSK/DVK data
signing keys, but schemes like ESIGN [Okamoto, Fujisaki, Morita -- TSH-ESIGN,
IEEE P1363] are over an order of magnitude faster and are what the SHAROES
prototype relies on for signing every data and metadata write.

Scheme (with public exponent ``e``, k-bit primes p and q, n = p^2 q):

* The message representative ``v`` is the digest of the message placed in
  the high bits of the modulus (multiple of 2^shift, shift = 2k + 2).
* Signing: pick random r in [1, pq); let R = r^e mod n,
  a = (v - R) mod n, w0 = ceil(a / pq),
  u = w0 * (e * r^(e-1))^(-1) mod p, s = r + u * p * q.
  Then s^e mod n lands in the window [v, v + pq).
* Verification: recompute v from the message and check
  0 <= (s^e mod n) - v < 2^(2k).

This works because (u p q)^2 = u^2 q * n ≡ 0 (mod n), so
s^e ≡ r^e + e r^(e-1) u p q (mod n), and u was chosen to make that second
term ≡ w0 * p q (mod n).

Signing costs one small exponentiation plus one modular inverse mod p;
verification costs one small exponentiation -- both far cheaper than an
RSA private-key operation, which matches the paper's performance claim
(validated by ``benchmarks/test_ablation_esign.py``).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from ..errors import CryptoError, IntegrityError
from ..serialize import Reader, Writer
from . import hashes
from .primes import random_prime

DEFAULT_PRIME_BITS = 256
DEFAULT_EXPONENT = 4

_MAX_SIGN_ATTEMPTS = 64


@dataclass(frozen=True)
class VerificationKey:
    """Public half: anyone holding it can verify but not sign."""

    n: int
    e: int
    prime_bits: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        return hashes.fingerprint(self.to_bytes())

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.n)
        writer.put_int(self.e)
        writer.put_int(self.prime_bits)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "VerificationKey":
        reader = Reader(raw)
        n = reader.get_int()
        e = reader.get_int()
        prime_bits = reader.get_int()
        reader.expect_end()
        return cls(n=n, e=e, prime_bits=prime_bits)


@dataclass(frozen=True)
class SigningKey:
    """Private half: holds the factorization p, q of n = p^2 q."""

    p: int
    q: int
    e: int
    prime_bits: int

    @property
    def n(self) -> int:
        return self.p * self.p * self.q

    def verification_key(self) -> VerificationKey:
        return VerificationKey(n=self.n, e=self.e,
                               prime_bits=self.prime_bits)

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.p)
        writer.put_int(self.q)
        writer.put_int(self.e)
        writer.put_int(self.prime_bits)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SigningKey":
        reader = Reader(raw)
        p = reader.get_int()
        q = reader.get_int()
        e = reader.get_int()
        prime_bits = reader.get_int()
        reader.expect_end()
        return cls(p=p, q=q, e=e, prime_bits=prime_bits)


@dataclass(frozen=True)
class SignatureKeyPair:
    """The (DSK, DVK) or (MSK, MVK) pair attached to a SHAROES object."""

    signing: SigningKey
    verification: VerificationKey


def generate_keypair(prime_bits: int = DEFAULT_PRIME_BITS,
                     e: int = DEFAULT_EXPONENT) -> SignatureKeyPair:
    """Generate an ESIGN key pair with k-bit primes (n has ~3k bits)."""
    if e < 4:
        raise CryptoError("ESIGN requires e >= 4")
    if prime_bits < 32:
        raise CryptoError("prime size too small to embed a digest window")
    p = random_prime(prime_bits)
    q = random_prime(prime_bits)
    while q == p:
        q = random_prime(prime_bits)
    signing = SigningKey(p=p, q=q, e=e, prime_bits=prime_bits)
    return SignatureKeyPair(signing=signing,
                            verification=signing.verification_key())


def _representative(message: bytes, n: int, prime_bits: int) -> int:
    """Message digest placed in the high bits of the modulus.

    Returns a multiple of 2^(2k+2) strictly below n - 2^(2k+2), so the
    signing window [v, v + pq) never wraps around n.
    """
    shift = 2 * prime_bits + 2
    top = n >> shift
    if top < 2:
        raise CryptoError("modulus too small for digest window")
    h = int.from_bytes(hashes.digest(message), "big")
    return (h % (top - 1)) << shift


def sign(key: SigningKey, message: bytes) -> bytes:
    """Sign ``message``; returns a modulus-sized signature."""
    n = key.n
    pq = key.p * key.q
    v = _representative(message, n, key.prime_bits)
    for _ in range(_MAX_SIGN_ATTEMPTS):
        r = secrets.randbelow(pq - 1) + 1
        if r % key.p == 0:
            continue
        big_r = pow(r, key.e, n)
        a = (v - big_r) % n
        w0 = -(-a // pq)  # ceil division
        denom = (key.e * pow(r, key.e - 1, key.p)) % key.p
        if denom == 0 or w0 % key.p == 0:
            continue
        u = (w0 * pow(denom, -1, key.p)) % key.p
        s = r + u * pq
        # Validate the window before returning (cheap; guards edge cases).
        check = pow(s, key.e, n) - v
        if 0 <= check < (1 << (2 * key.prime_bits + 2)):
            byte_length = (n.bit_length() + 7) // 8
            return s.to_bytes(byte_length, "big")
    raise CryptoError("ESIGN signing failed to converge; retry")


def verify(key: VerificationKey, message: bytes, signature: bytes) -> None:
    """Verify; raises :class:`IntegrityError` if the signature is invalid."""
    if len(signature) != key.byte_length:
        raise IntegrityError("ESIGN signature has wrong length")
    s = int.from_bytes(signature, "big")
    if not 0 < s < key.n:
        raise IntegrityError("ESIGN signature out of range")
    v = _representative(message, key.n, key.prime_bits)
    delta = pow(s, key.e, key.n) - v
    if not 0 <= delta < (1 << (2 * key.prime_bits + 2)):
        raise IntegrityError("ESIGN signature verification failed")
