"""Cryptographic substrate for the SHAROES reproduction.

Everything is implemented from scratch (no crypto packages exist in this
environment): AES (FIPS-197), a fast hashlib-backed stream cipher, RSA,
ESIGN signatures, prime generation, HMAC/KDF helpers, and the instrumented
:class:`~repro.crypto.provider.CryptoProvider` facade that the rest of the
library calls through.
"""

from . import aes, esign, hashes, ibe, keys, primes, rsa, stream
from .keys import ObjectKeySet, new_signature_pair, new_symmetric_key
from .provider import AesEngine, CryptoEvent, CryptoProvider, StreamEngine

__all__ = [
    "aes",
    "ibe",
    "esign",
    "hashes",
    "keys",
    "primes",
    "rsa",
    "stream",
    "ObjectKeySet",
    "new_signature_pair",
    "new_symmetric_key",
    "AesEngine",
    "CryptoEvent",
    "CryptoProvider",
    "StreamEngine",
]
