"""RSA: key generation, encryption, decryption, signing, verification.

Implemented from scratch (Miller-Rabin keygen, CRT-accelerated private
operations, PKCS#1-v1.5-style randomized padding, hash-and-sign signatures)
because no crypto library is installed.  The paper uses 2048-bit RSA for all
public-key operations (NIST SP 800-78 parameters); tests use smaller moduli
to keep key generation fast, benchmarks charge simulated 2008-era costs via
:mod:`repro.sim.costmodel` regardless of host speed.

Large payloads are chunked into modulus-size blocks
(:func:`encrypt_blob` / :func:`decrypt_blob`) -- this is exactly what the
paper's PUBLIC comparator does to a whole metadata object, and what makes it
slow: every 256-byte block of a stat costs one private-key operation.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from ..errors import CryptoError, IntegrityError
from ..serialize import Reader, Writer
from . import hashes
from .primes import random_prime

#: Payload bytes per block of a nominal 2048-bit modulus.  The simulated
#: cost model charges public-key work in these units so that benchmark
#: numbers reflect the paper's 2048-bit RSA even when tests generate
#: smaller keys for speed.
NOMINAL_BLOCK_PAYLOAD = 2048 // 8 - 11


def nominal_block_count(payload_len: int) -> int:
    """RSA blocks a 2048-bit key would need for ``payload_len`` bytes."""
    return max(1, -(-payload_len // NOMINAL_BLOCK_PAYLOAD))

DEFAULT_BITS = 2048
DEFAULT_EXPONENT = 65537

_PAD_OVERHEAD = 11  # PKCS#1 v1.5: 0x00 0x02 <8+ nonzero random> 0x00


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def max_payload(self) -> int:
        return self.byte_length - _PAD_OVERHEAD

    def fingerprint(self) -> str:
        return hashes.fingerprint(
            self.n.to_bytes(self.byte_length, "big"))

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.n)
        writer.put_int(self.e)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PublicKey":
        reader = Reader(raw)
        n = reader.get_int()
        e = reader.get_int()
        reader.expect_end()
        return cls(n=n, e=e)


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key with CRT components for fast private operations."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> PublicKey:
        return PublicKey(self.n, self.e)

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.n)
        writer.put_int(self.e)
        writer.put_int(self.d)
        writer.put_int(self.p)
        writer.put_int(self.q)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PrivateKey":
        reader = Reader(raw)
        n = reader.get_int()
        e = reader.get_int()
        d = reader.get_int()
        p = reader.get_int()
        q = reader.get_int()
        reader.expect_end()
        return cls(n=n, e=e, d=d, p=p, q=q)

    def _private_op(self, value: int) -> int:
        """Compute ``value ** d mod n`` using the CRT."""
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        mp = pow(value % self.p, dp, self.p)
        mq = pow(value % self.q, dq, self.q)
        h = (q_inv * (mp - mq)) % self.p
        return mq + h * self.q


@dataclass(frozen=True)
class KeyPair:
    """A public/private key pair -- the identity of a SHAROES principal."""

    public: PublicKey
    private: PrivateKey


def generate_keypair(bits: int = DEFAULT_BITS,
                     e: int = DEFAULT_EXPONENT) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 128:
        raise CryptoError("modulus below 128 bits is not RSA, it is a toy")
    half = bits // 2
    while True:
        p = random_prime(half)
        q = random_prime(bits - half)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        d = pow(e, -1, phi)
        private = PrivateKey(n=n, e=e, d=d, p=p, q=q)
        return KeyPair(public=private.public_key(), private=private)


# -- padding ----------------------------------------------------------------

def _pad(message: bytes, target_len: int) -> bytes:
    """PKCS#1 v1.5 type-2 (encryption) padding."""
    if len(message) > target_len - _PAD_OVERHEAD:
        raise CryptoError("message too long for RSA modulus")
    pad_len = target_len - len(message) - 3
    padding = bytearray()
    while len(padding) < pad_len:
        chunk = secrets.token_bytes(pad_len - len(padding))
        padding.extend(b for b in chunk if b != 0)
    return b"\x00\x02" + bytes(padding) + b"\x00" + message


def _unpad(padded: bytes) -> bytes:
    """Strip PKCS#1 v1.5 type-2 padding."""
    if len(padded) < _PAD_OVERHEAD or padded[0] != 0 or padded[1] != 2:
        raise CryptoError("RSA decryption produced invalid padding")
    try:
        separator = padded.index(0, 2)
    except ValueError as exc:
        raise CryptoError("RSA padding separator missing") from exc
    if separator < 10:
        raise CryptoError("RSA padding too short")
    return padded[separator + 1:]


# -- single-block encryption -------------------------------------------------

def encrypt(public: PublicKey, message: bytes) -> bytes:
    """Encrypt one message that fits in a single modulus block."""
    padded = _pad(message, public.byte_length)
    value = int.from_bytes(padded, "big")
    cipher = pow(value, public.e, public.n)
    return cipher.to_bytes(public.byte_length, "big")


def decrypt(private: PrivateKey, ciphertext: bytes) -> bytes:
    """Decrypt one modulus-size block."""
    if len(ciphertext) != private.byte_length:
        raise CryptoError("ciphertext length does not match modulus")
    value = int.from_bytes(ciphertext, "big")
    if value >= private.n:
        raise CryptoError("ciphertext out of range")
    padded = private._private_op(value).to_bytes(private.byte_length, "big")
    return _unpad(padded)


# -- multi-block blobs --------------------------------------------------------

def block_count(public: PublicKey, payload_len: int) -> int:
    """Number of RSA blocks needed to encrypt ``payload_len`` bytes."""
    chunk = public.max_payload
    return max(1, (payload_len + chunk - 1) // chunk)


def encrypt_blob(public: PublicKey, payload: bytes) -> bytes:
    """Chunk ``payload`` into modulus-size blocks and encrypt each.

    This mirrors the paper's PUBLIC comparator, where whole metadata objects
    are public-key encrypted block by block.
    """
    chunk = public.max_payload
    blocks = [payload[i:i + chunk] for i in range(0, len(payload), chunk)]
    if not blocks:
        blocks = [b""]
    return b"".join(encrypt(public, block) for block in blocks)


def decrypt_blob(private: PrivateKey, blob: bytes) -> bytes:
    """Inverse of :func:`encrypt_blob`."""
    size = private.byte_length
    if len(blob) % size != 0 or not blob:
        raise CryptoError("RSA blob is not a whole number of blocks")
    pieces = [decrypt(private, blob[i:i + size])
              for i in range(0, len(blob), size)]
    return b"".join(pieces)


# -- signatures ---------------------------------------------------------------

def sign(private: PrivateKey, message: bytes) -> bytes:
    """Hash-and-sign: pad the digest and apply the private operation."""
    digest = hashes.digest(message)
    padded = (b"\x00\x01"
              + b"\xff" * (private.byte_length - len(digest) - 3)
              + b"\x00" + digest)
    value = int.from_bytes(padded, "big")
    signature = private._private_op(value)
    return signature.to_bytes(private.byte_length, "big")


def verify(public: PublicKey, message: bytes, signature: bytes) -> None:
    """Verify a signature; raises :class:`IntegrityError` on failure."""
    if len(signature) != public.byte_length:
        raise IntegrityError("signature length does not match modulus")
    value = int.from_bytes(signature, "big")
    if value >= public.n:
        raise IntegrityError("signature out of range")
    recovered = pow(value, public.e, public.n).to_bytes(
        public.byte_length, "big")
    digest = hashes.digest(message)
    expected = (b"\x00\x01"
                + b"\xff" * (public.byte_length - len(digest) - 3)
                + b"\x00" + digest)
    if recovered != expected:
        raise IntegrityError("RSA signature verification failed")
