"""Identity-Based Encryption (Cocks' quadratic-residue scheme).

Paper section II-A assumes either a PKI or "usage of Identity-Based
Encryption schemes in which the email address of the user is a valid
public key" [Boneh-Franklin].  Boneh-Franklin needs elliptic-curve
pairings; Cocks' 2001 scheme achieves IBE from quadratic residues alone,
which is implementable from scratch -- so it is what this reproduction
ships to discharge the assumption.

Scheme summary (Blum modulus n = p*q with p = q = 3 (mod 4); the key
authority holds p, q):

* An identity string hashes to ``a`` in Z_n* with Jacobi symbol
  ``(a/n) = +1`` (counter-hash until it is).
* Key extraction: the authority computes ``r = a^((n+5-p-q)/8) mod n``;
  then ``r^2 = a`` (mod n) if ``a`` is a quadratic residue, otherwise
  ``r^2 = -a`` (mod n).  Which case holds is part of the private key.
* Encrypting one bit ``m in {+1, -1}``: pick random ``t`` with
  ``(t/n) = m`` and send ``c = t + a/t`` (and, because the sender does
  not know which of a, -a is the residue, also ``c' = t' - a/t'`` with a
  fresh ``t'`` of the same symbol).
* Decryption: with ``s`` the ciphertext piece matching the private key's
  case, ``m = Jacobi(s + 2r, n)`` -- since
  ``s + 2r = t (1 + r/t)^2`` (mod n), whose symbol equals ``(t/n)``.

Cocks encrypts bit-by-bit (two group elements per bit), so it is used
only to wrap small payloads -- exactly the superblock/group-key lockboxes
SHAROES needs at enrolment time.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from ..errors import CryptoError
from ..serialize import Reader, Writer
from . import hashes
from .primes import random_prime_3mod4

DEFAULT_MODULUS_BITS = 512


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd n > 0."""
    if n <= 0 or n % 2 == 0:
        raise CryptoError("Jacobi symbol needs positive odd n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


@dataclass(frozen=True)
class PublicParams:
    """The authority's public parameters: everyone can encrypt with
    these plus a recipient's identity string."""

    n: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.n)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PublicParams":
        reader = Reader(raw)
        n = reader.get_int()
        reader.expect_end()
        return cls(n=n)


@dataclass(frozen=True)
class IdentityKey:
    """The extracted private key for one identity."""

    identity: str
    r: int
    #: True if a itself is the residue (use c); False for -a (use c').
    a_is_residue: bool

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_str(self.identity)
        writer.put_int(self.r)
        writer.put_bool(self.a_is_residue)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IdentityKey":
        reader = Reader(raw)
        identity = reader.get_str()
        r = reader.get_int()
        a_is_residue = reader.get_bool()
        reader.expect_end()
        return cls(identity=identity, r=r, a_is_residue=a_is_residue)


def identity_element(params: PublicParams, identity: str) -> int:
    """Hash an identity to ``a`` with Jacobi symbol +1 (counter-hash)."""
    counter = 0
    while True:
        material = hashes.digest(
            f"sharoes-ibe:{counter}:{identity}".encode("utf-8"))
        # widen to modulus size
        stretched = hashes.derive_key(material, "ibe-widen",
                                      params.byte_length)
        a = int.from_bytes(stretched, "big") % params.n
        if a > 1 and math.gcd(a, params.n) == 1 and jacobi(
                a, params.n) == 1:
            return a
        counter += 1


class KeyAuthority:
    """The enterprise's IBE key authority (holds the master secret).

    Lives inside the trust domain -- like the paper's PKI, it is
    enterprise infrastructure, never the SSP's.
    """

    def __init__(self, modulus_bits: int = DEFAULT_MODULUS_BITS):
        half = modulus_bits // 2
        self._p = random_prime_3mod4(half)
        self._q = random_prime_3mod4(modulus_bits - half)
        while self._q == self._p:
            self._q = random_prime_3mod4(modulus_bits - half)
        self.params = PublicParams(n=self._p * self._q)

    def extract(self, identity: str) -> IdentityKey:
        """Compute the private key for an identity (master-key op)."""
        n = self.params.n
        a = identity_element(self.params, identity)
        exponent = (n + 5 - self._p - self._q) // 8
        r = pow(a, exponent, n)
        if pow(r, 2, n) == a % n:
            return IdentityKey(identity=identity, r=r, a_is_residue=True)
        if pow(r, 2, n) == (-a) % n:
            return IdentityKey(identity=identity, r=r, a_is_residue=False)
        raise CryptoError("Cocks extraction failed (non-Blum modulus?)")


def _encrypt_bit(params: PublicParams, a: int, bit: int) -> tuple[int, int]:
    """One plaintext bit -> the (c, c') pair."""
    symbol = 1 if bit else -1
    n = params.n

    def sample() -> int:
        while True:
            t = secrets.randbelow(n - 2) + 2
            if math.gcd(t, n) == 1 and jacobi(t, n) == symbol:
                return t

    t1 = sample()
    c = (t1 + a * pow(t1, -1, n)) % n
    t2 = sample()
    c_prime = (t2 - a * pow(t2, -1, n)) % n
    return c, c_prime


def _decrypt_bit(params: PublicParams, key: IdentityKey,
                 c: int, c_prime: int) -> int:
    s = c if key.a_is_residue else c_prime
    symbol = jacobi((s + 2 * key.r) % params.n, params.n)
    if symbol == 0:
        raise CryptoError("degenerate IBE ciphertext")
    return 1 if symbol == 1 else 0


def encrypt(params: PublicParams, identity: str, payload: bytes) -> bytes:
    """Encrypt ``payload`` to an identity string (no key lookup needed).

    Cocks is bit-by-bit (2 modulus-size elements per bit), so payloads
    should be small -- wrap a symmetric key, not a file.
    """
    if len(payload) > 64:
        raise CryptoError("IBE payloads are capped at 64 bytes; wrap a "
                          "symmetric key instead")
    a = identity_element(params, identity)
    writer = Writer()
    writer.put_int(len(payload))
    for byte in payload:
        for bit_index in range(8):
            bit = (byte >> (7 - bit_index)) & 1
            c, c_prime = _encrypt_bit(params, a, bit)
            writer.put_int(c)
            writer.put_int(c_prime)
    return writer.getvalue()


def decrypt(params: PublicParams, key: IdentityKey, blob: bytes) -> bytes:
    """Decrypt with the extracted identity key."""
    reader = Reader(blob)
    length = reader.get_int()
    out = bytearray()
    for _ in range(length):
        byte = 0
        for _ in range(8):
            c = reader.get_int()
            c_prime = reader.get_int()
            byte = (byte << 1) | _decrypt_bit(params, key, c, c_prime)
        out.append(byte)
    reader.expect_end()
    return bytes(out)
