"""Key generation helpers for SHAROES objects.

Every file or directory carries (paper section II-B):

* **DEK** -- symmetric Data Encryption Key for its data block;
* **DSK/DVK** -- asymmetric Data Signing / Verification keys distinguishing
  writers from readers;
* **MEK** -- symmetric Metadata Encryption Key (held by the parent
  directory's table, or the superblock for the root);
* **MSK/MVK** -- asymmetric Metadata Signing / Verification keys
  (MSK distributed only to owners).

This module generates those keys.  Signature pairs default to ESIGN (the
paper's fast choice); symmetric keys are 128-bit, matching the paper's
AES-128 / NIST SP 800-78 configuration.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from . import esign

SYMMETRIC_KEY_BYTES = 16

#: Prime size used for object signature pairs.  96-bit primes keep key
#: generation cheap enough to mint two pairs per created file while still
#: exercising the real algebra; production deployments would raise this
#: (the cost model charges 2008-era ESIGN costs regardless).
OBJECT_SIGNATURE_PRIME_BITS = 96


def new_symmetric_key() -> bytes:
    """Fresh random 128-bit symmetric key (a DEK or MEK)."""
    return secrets.token_bytes(SYMMETRIC_KEY_BYTES)


def new_signature_pair(prime_bits: int = OBJECT_SIGNATURE_PRIME_BITS
                       ) -> esign.SignatureKeyPair:
    """Fresh ESIGN pair for DSK/DVK or MSK/MVK."""
    return esign.generate_keypair(prime_bits=prime_bits)


@dataclass
class ObjectKeySet:
    """The complete key material minted for one filesystem object.

    Only the *owner's* CAP ever sees all of these; other CAPs receive a
    filtered view (see :mod:`repro.caps`).
    """

    dek: bytes
    dsk: esign.SigningKey
    dvk: esign.VerificationKey
    mek: bytes
    msk: esign.SigningKey
    mvk: esign.VerificationKey

    @classmethod
    def generate(cls, prime_bits: int = OBJECT_SIGNATURE_PRIME_BITS
                 ) -> "ObjectKeySet":
        data_pair = new_signature_pair(prime_bits)
        meta_pair = new_signature_pair(prime_bits)
        return cls(
            dek=new_symmetric_key(),
            dsk=data_pair.signing,
            dvk=data_pair.verification,
            mek=new_symmetric_key(),
            msk=meta_pair.signing,
            mvk=meta_pair.verification,
        )

    def rekey_data(self) -> None:
        """Replace the data keys (used by revocation)."""
        pair = new_signature_pair(self.dsk.prime_bits)
        self.dek = new_symmetric_key()
        self.dsk = pair.signing
        self.dvk = pair.verification

    def rekey_metadata(self) -> None:
        """Replace the metadata keys (used by revocation)."""
        pair = new_signature_pair(self.msk.prime_bits)
        self.mek = new_symmetric_key()
        self.msk = pair.signing
        self.mvk = pair.verification
