"""Pure-Python AES (FIPS-197) with CBC and CTR modes.

The paper uses 128-bit AES for all symmetric encryption (NIST SP 800-78
parameters).  No crypto package is available in this environment, so this is
a from-scratch implementation of the full cipher -- key expansion,
encryption and decryption for 128/192/256-bit keys -- validated against the
FIPS-197 and NIST SP 800-38A test vectors in the test suite.

Performance note: a pure-Python block cipher runs at roughly 100 KB/s, which
is fine for the small metadata objects SHAROES encrypts constantly, but not
for megabyte-scale file data.  Bulk data paths use
:mod:`repro.crypto.stream` (a hashlib-backed PRF in counter mode) behind the
same interface; the simulated cost model charges both as "AES on 2008
hardware" so benchmark numbers are unaffected by the host interpreter.
"""

from __future__ import annotations

import secrets

from ..errors import CryptoError

BLOCK_SIZE = 16


def _build_sbox() -> tuple[bytes, bytes]:
    """Compute the AES S-box and its inverse from GF(2^8) arithmetic."""
    # Multiplicative inverse table via exponentiation by generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 0x03 in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        s = inv
        result = 0x63
        for shift in range(5):
            result ^= s
            s = ((s << 1) | (s >> 7)) & 0xFF
        sbox[value] = result
    for value in range(256):
        inv_sbox[sbox[value]] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (Russian peasant)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_xtime(i) for i in range(256))
_MUL3 = bytes(_xtime(i) ^ i for i in range(256))
_MUL9 = bytes(_mul(i, 9) for i in range(256))
_MUL11 = bytes(_mul(i, 11) for i in range(256))
_MUL13 = bytes(_mul(i, 13) for i in range(256))
_MUL14 = bytes(_mul(i, 14) for i in range(256))


def _expand_key(key: bytes) -> list[list[int]]:
    """AES key schedule: return the round keys as flat 16-byte lists."""
    key_len = len(key)
    if key_len not in (16, 24, 32):
        raise CryptoError(f"AES key must be 16/24/32 bytes, got {key_len}")
    nk = key_len // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]

    words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        word = list(words[i - 1])
        if i % nk == 0:
            word = word[1:] + word[:1]
            word = [_SBOX[b] for b in word]
            word[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            word = [_SBOX[b] for b in word]
        words.append([words[i - nk][j] ^ word[j] for j in range(4)])

    round_keys = []
    for r in range(rounds + 1):
        flat: list[int] = []
        for w in words[4 * r:4 * r + 4]:
            flat.extend(w)
        round_keys.append(flat)
    return round_keys


class AES:
    """The AES block cipher for a fixed key.

    >>> cipher = AES(bytes(16))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    def __init__(self, key: bytes):
        self._round_keys = _expand_key(key)
        self._rounds = len(self._round_keys) - 1

    # -- single block ------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES block must be 16 bytes")
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for rnd in range(1, self._rounds):
            state = self._encrypt_round(state, self._round_keys[rnd])
        state = self._final_round(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES block must be 16 bytes")
        state = [block[i] ^ self._round_keys[self._rounds][i]
                 for i in range(16)]
        for rnd in range(self._rounds - 1, 0, -1):
            state = self._decrypt_round(state, self._round_keys[rnd])
        # Final (first) round: InvShiftRows, InvSubBytes, AddRoundKey.
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        state = [state[i] ^ self._round_keys[0][i] for i in range(16)]
        return bytes(state)

    # -- round helpers (column-major state as in FIPS-197) -----------------

    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    def _encrypt_round(self, state: list[int], rk: list[int]) -> list[int]:
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            out[4 * c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return [out[i] ^ rk[i] for i in range(16)]

    def _final_round(self, state: list[int], rk: list[int]) -> list[int]:
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        return [state[i] ^ rk[i] for i in range(16)]

    def _decrypt_round(self, state: list[int], rk: list[int]) -> list[int]:
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        state = [state[i] ^ rk[i] for i in range(16)]
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            out[4 * c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out


# -- padding ---------------------------------------------------------------

def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """PKCS#7 padding (always adds at least one byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("invalid padded length")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise CryptoError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("corrupt padding")
    return data[:-pad_len]


# -- modes of operation ----------------------------------------------------

def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes | None = None) -> bytes:
    """AES-CBC with PKCS#7 padding; the random IV is prepended."""
    if iv is None:
        iv = secrets.token_bytes(BLOCK_SIZE)
    if len(iv) != BLOCK_SIZE:
        raise CryptoError("IV must be 16 bytes")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray(iv)
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in
                      zip(padded[offset:offset + BLOCK_SIZE], previous))
        previous = cipher.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def decrypt_cbc(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_cbc`."""
    if len(ciphertext) < 2 * BLOCK_SIZE or len(ciphertext) % BLOCK_SIZE:
        raise CryptoError("ciphertext too short or misaligned")
    cipher = AES(key)
    iv, body = ciphertext[:BLOCK_SIZE], ciphertext[BLOCK_SIZE:]
    out = bytearray()
    previous = iv
    for offset in range(0, len(body), BLOCK_SIZE):
        block = body[offset:offset + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def encrypt_ctr(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> bytes:
    """AES-CTR; the 8-byte random nonce is prepended. Length-preserving."""
    if nonce is None:
        nonce = secrets.token_bytes(8)
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    cipher = AES(key)
    out = bytearray(nonce)
    counter = 0
    for offset in range(0, len(plaintext), BLOCK_SIZE):
        keystream = cipher.encrypt_block(
            nonce + counter.to_bytes(8, "big"))
        chunk = plaintext[offset:offset + BLOCK_SIZE]
        out.extend(a ^ b for a, b in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def decrypt_ctr(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_ctr`."""
    if len(ciphertext) < 8:
        raise CryptoError("ciphertext missing CTR nonce")
    nonce, body = ciphertext[:8], ciphertext[8:]
    cipher = AES(key)
    out = bytearray()
    counter = 0
    for offset in range(0, len(body), BLOCK_SIZE):
        keystream = cipher.encrypt_block(nonce + counter.to_bytes(8, "big"))
        chunk = body[offset:offset + BLOCK_SIZE]
        out.extend(a ^ b for a, b in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def generate_key(bits: int = 128) -> bytes:
    """Fresh random AES key (128 by default, matching the paper)."""
    if bits not in (128, 192, 256):
        raise CryptoError("AES key size must be 128/192/256 bits")
    return secrets.token_bytes(bits // 8)
