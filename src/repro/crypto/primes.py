"""Prime generation and primality testing.

RSA and ESIGN key generation both need large random primes.  We implement
Miller-Rabin with a deterministic witness set for small inputs and a
configurable number of random rounds for cryptographic sizes, preceded by
trial division against a small-prime sieve to cheaply reject most
candidates.
"""

from __future__ import annotations

import secrets

# Deterministic Miller-Rabin witnesses: sufficient for all n < 3.3 * 10**24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

_SIEVE_LIMIT = 2000


def _small_primes(limit: int = _SIEVE_LIMIT) -> tuple[int, ...]:
    """Return all primes below ``limit`` via the sieve of Eratosthenes."""
    sieve = bytearray([1]) * limit
    sieve[0:2] = b"\x00\x00"
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i:limit:i] = b"\x00" * len(range(i * i, limit, i))
    return tuple(i for i in range(limit) if sieve[i])


SMALL_PRIMES = _small_primes()


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round; True if ``n`` passes for this witness."""
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 40) -> bool:
    """Probabilistic primality test.

    Deterministic for ``n`` below ~3.3e24 (fixed witness set), otherwise
    Miller-Rabin with ``rounds`` random witnesses (error probability below
    4**-rounds).
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < _DETERMINISTIC_LIMIT:
        witnesses = [w for w in _DETERMINISTIC_WITNESSES if w < n - 1]
    else:
        witnesses = [secrets.randbelow(n - 3) + 2 for _ in range(rounds)]

    return all(_miller_rabin_round(n, d, r, w) for w in witnesses)


def random_prime(bits: int, rng: secrets.SystemRandom | None = None) -> int:
    """Return a random prime of exactly ``bits`` bits (top two bits set).

    Setting the top two bits guarantees that the product of two such primes
    has exactly ``2 * bits`` bits, which RSA key generation relies on.
    """
    if bits < 3:
        raise ValueError("prime must have at least 3 bits")
    getrandbits = rng.getrandbits if rng is not None else secrets.randbits
    while True:
        candidate = getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_prime(candidate):
            return candidate


def random_prime_3mod4(bits: int) -> int:
    """Return a random ``bits``-bit prime congruent to 3 mod 4.

    ESIGN parameter generation prefers such primes so that small even
    exponents behave well.
    """
    while True:
        p = random_prime(bits)
        if p % 4 == 3:
            return p
