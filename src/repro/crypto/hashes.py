"""Hashing, HMAC and key-derivation helpers.

SHAROES uses keyed hashes in two places:

* exec-only directory CAPs derive a per-row key from the child's *name*
  keyed by the directory's DEK -- ``derive_row_key`` below;
* content hashes feed the DSK/MSK signatures so that signing covers the
  whole object cheaply.

The paper mentions MD5/SHA1 (2008-era); we default to SHA-256 but expose the
algorithm as a parameter so the historical choices remain constructible.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

DEFAULT_HASH = "sha256"


def digest(data: bytes, algorithm: str = DEFAULT_HASH) -> bytes:
    """Plain cryptographic hash of ``data``."""
    return hashlib.new(algorithm, data).digest()


def hexdigest(data: bytes, algorithm: str = DEFAULT_HASH) -> str:
    """Hex form of :func:`digest`, convenient for blob indexing."""
    return hashlib.new(algorithm, data).hexdigest()


def hmac(key: bytes, data: bytes, algorithm: str = DEFAULT_HASH) -> bytes:
    """HMAC of ``data`` under ``key``."""
    return _hmac.new(key, data, algorithm).digest()


def hmac_verify(key: bytes, data: bytes, tag: bytes,
                algorithm: str = DEFAULT_HASH) -> bool:
    """Constant-time HMAC verification."""
    expected = _hmac.new(key, data, algorithm).digest()
    return _hmac.compare_digest(expected, tag)


def derive_key(secret: bytes, label: str, length: int = 16,
               algorithm: str = DEFAULT_HASH) -> bytes:
    """Derive a ``length``-byte subkey from ``secret`` for purpose ``label``.

    An HKDF-expand style construction: counter-mode HMAC over the label.
    Used wherever SHAROES needs several independent keys from one secret.
    """
    out = b""
    counter = 1
    info = label.encode("utf-8")
    while len(out) < length:
        out += _hmac.new(secret, bytes([counter]) + info, algorithm).digest()
        counter += 1
    return out[:length]


def derive_row_key(table_dek: bytes, name: str, length: int = 16,
                   algorithm: str = DEFAULT_HASH) -> bytes:
    """Row key for exec-only directory tables: ``H_DEK(name)``.

    Any user who knows the exact ``name`` of a child (and holds the table's
    DEK) can derive this key and decrypt that child's row -- the
    cryptographic realization of *nix --x directory semantics (paper
    section III-A).
    """
    return derive_key(table_dek, "sharoes-row:" + name, length, algorithm)


def fingerprint(data: bytes, length: int = 8) -> str:
    """Short stable identifier for keys/blobs in logs and blob indices."""
    return hashlib.sha256(data).hexdigest()[: length * 2]
