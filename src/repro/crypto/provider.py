"""Instrumented crypto provider.

All cryptographic work in the library flows through a
:class:`CryptoProvider` so that:

* every operation is *counted* (ops and bytes, per category) -- this drives
  the simulated 2008-testbed cost model that reproduces the paper's
  benchmark numbers independent of host CPU speed;
* the symmetric engine is *pluggable*: real pure-Python AES for
  correctness-critical paths and tests, or the fast hashlib-backed stream
  cipher for bulk data (identical interface, identical simulated cost);
* signature schemes dispatch on key type: ESIGN keys (the paper's fast
  choice) or RSA keys (used by the PUBLIC/PUB-OPT comparators).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..errors import CryptoError, IntegrityError
from . import aes, esign, hashes, rsa, stream


@dataclass(frozen=True)
class CryptoEvent:
    """One cryptographic operation, reported to cost-model listeners.

    ``kind`` is one of: sym_encrypt, sym_decrypt, pk_encrypt, pk_decrypt,
    sign, verify, keyed_hash.  ``num_bytes`` is the payload size;
    ``blocks`` is the RSA block count for public-key operations (each block
    is one modular exponentiation on the simulated client).
    """

    kind: str
    num_bytes: int
    blocks: int = 1


Listener = Callable[[CryptoEvent], None]


class _SymmetricEngine(Protocol):
    def seal(self, key: bytes, plaintext: bytes) -> bytes: ...

    def open(self, key: bytes, sealed: bytes) -> bytes: ...


class StreamEngine:
    """SHA-256-CTR + HMAC engine (fast path; see crypto.stream)."""

    name = "stream"

    def seal(self, key: bytes, plaintext: bytes) -> bytes:
        return stream.seal(key, plaintext)

    def open(self, key: bytes, sealed: bytes) -> bytes:
        return stream.open_sealed(key, sealed)


class AesEngine:
    """Real AES-CTR + HMAC-SHA256 encrypt-then-MAC engine.

    The MAC key derivation is domain-separated from the stream engine's
    ("sharoes-mac-aes" vs "sharoes-mac"): without that, a blob sealed by
    one engine would MAC-verify under the other and decrypt to garbage
    that looks authentic.
    """

    name = "aes"
    _TAG = 32

    def seal(self, key: bytes, plaintext: bytes) -> bytes:
        ciphertext = aes.encrypt_ctr(key, plaintext)
        tag_key = hashlib.sha256(b"sharoes-mac-aes" + key).digest()
        tag = _hmac.new(tag_key, ciphertext, hashlib.sha256).digest()
        return ciphertext + tag

    def open(self, key: bytes, sealed: bytes) -> bytes:
        if len(sealed) < 8 + self._TAG:
            raise CryptoError("sealed payload too short")
        ciphertext, tag = sealed[:-self._TAG], sealed[-self._TAG:]
        tag_key = hashlib.sha256(b"sharoes-mac-aes" + key).digest()
        expected = _hmac.new(tag_key, ciphertext, hashlib.sha256).digest()
        if not _hmac.compare_digest(expected, tag):
            raise IntegrityError("sealed payload failed MAC verification")
        return aes.decrypt_ctr(key, ciphertext)


_ENGINES = {"stream": StreamEngine, "aes": AesEngine}


@dataclass
class OpCounters:
    """Running totals of cryptographic work, by event kind."""

    ops: dict[str, int] = field(default_factory=dict)
    op_bytes: dict[str, int] = field(default_factory=dict)
    pk_blocks: dict[str, int] = field(default_factory=dict)

    def record(self, event: CryptoEvent) -> None:
        self.ops[event.kind] = self.ops.get(event.kind, 0) + 1
        self.op_bytes[event.kind] = (
            self.op_bytes.get(event.kind, 0) + event.num_bytes)
        if event.kind in ("pk_encrypt", "pk_decrypt"):
            self.pk_blocks[event.kind] = (
                self.pk_blocks.get(event.kind, 0) + event.blocks)

    def total(self, kind: str) -> int:
        return self.ops.get(kind, 0)

    def reset(self) -> None:
        self.ops.clear()
        self.op_bytes.clear()
        self.pk_blocks.clear()


class CryptoProvider:
    """Facade over all primitives, with op accounting.

    Parameters
    ----------
    engine:
        Symmetric engine name: ``"stream"`` (default, fast) or ``"aes"``
        (the real FIPS-197 implementation).
    listener:
        Optional callable receiving a :class:`CryptoEvent` for every
        operation; the simulated cost model registers itself here.
    """

    def __init__(self, engine: str = "stream",
                 listener: Listener | None = None):
        if engine not in _ENGINES:
            raise CryptoError(f"unknown symmetric engine {engine!r}")
        self._engine: _SymmetricEngine = _ENGINES[engine]()
        self.engine_name = engine
        self.counters = OpCounters()
        self._listeners: list[Listener] = []
        if listener is not None:
            self._listeners.append(listener)

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def _emit(self, kind: str, num_bytes: int, blocks: int = 1) -> None:
        event = CryptoEvent(kind=kind, num_bytes=num_bytes, blocks=blocks)
        self.counters.record(event)
        for listener in self._listeners:
            listener(event)

    # -- symmetric ----------------------------------------------------------

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        self._emit("sym_encrypt", len(plaintext))
        return self._engine.seal(key, plaintext)

    def sym_decrypt(self, key: bytes, sealed: bytes) -> bytes:
        self._emit("sym_decrypt", len(sealed))
        return self._engine.open(key, sealed)

    # -- public key ----------------------------------------------------------

    def pk_encrypt(self, public: rsa.PublicKey, payload: bytes) -> bytes:
        # Blocks are charged in *nominal 2048-bit* units so simulated costs
        # match the paper's key size even when tests use smaller moduli.
        blocks = rsa.nominal_block_count(len(payload))
        self._emit("pk_encrypt", len(payload), blocks=blocks)
        return rsa.encrypt_blob(public, payload)

    def pk_decrypt(self, private: rsa.PrivateKey, blob: bytes) -> bytes:
        payload = rsa.decrypt_blob(private, blob)
        blocks = rsa.nominal_block_count(len(payload))
        self._emit("pk_decrypt", len(blob), blocks=blocks)
        return payload

    # -- signatures -----------------------------------------------------------

    def sign(self, key: esign.SigningKey | rsa.PrivateKey,
             message: bytes) -> bytes:
        if isinstance(key, esign.SigningKey):
            self._emit("sign", len(message))
            return esign.sign(key, message)
        if isinstance(key, rsa.PrivateKey):
            self._emit("sign_rsa", len(message))
            return rsa.sign(key, message)
        raise CryptoError(f"cannot sign with {type(key).__name__}")

    def verify(self, key: esign.VerificationKey | rsa.PublicKey,
               message: bytes, signature: bytes) -> None:
        if isinstance(key, esign.VerificationKey):
            self._emit("verify", len(message))
            esign.verify(key, message, signature)
            return
        if isinstance(key, rsa.PublicKey):
            self._emit("verify_rsa", len(message))
            rsa.verify(key, message, signature)
            return
        raise CryptoError(f"cannot verify with {type(key).__name__}")

    # -- keyed hash ------------------------------------------------------------

    def derive_row_key(self, table_dek: bytes, name: str) -> bytes:
        self._emit("keyed_hash", len(name))
        return hashes.derive_row_key(table_dek, name)
