"""Fast symmetric stream cipher for bulk file data.

Pure-Python AES (:mod:`repro.crypto.aes`) runs at ~100 KB/s, which would
make megabyte-scale benchmark workloads take minutes of *host* time even
though the *simulated* cost model is what benchmarks report.  This module
provides a counter-mode PRF cipher built on hashlib's C-backed SHA-256 --
keystream block i is ``SHA256(key || nonce || i)`` -- plus an HMAC-SHA256
integrity tag.  It is a real cipher (IND-CPA under the PRF assumption on
SHA-256), used behind the same seal/open interface as AES.

The library selects the engine per payload: metadata objects (hundreds of
bytes, encrypted constantly) may use real AES, bulk data uses this stream
cipher.  The simulated cost model charges both identically as "AES-128 on
the paper's 2008 client", so figure reproduction is engine-independent.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from ..errors import CryptoError, IntegrityError

_DIGEST_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of SHA-256 counter-mode keystream."""
    blocks = []
    prefix = key + nonce
    for counter in range((length + _DIGEST_SIZE - 1) // _DIGEST_SIZE):
        blocks.append(hashlib.sha256(
            prefix + counter.to_bytes(8, "big")).digest())
    return b"".join(blocks)[:length]


def encrypt(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> bytes:
    """Encrypt ``plaintext``; random nonce prepended. Length = input + 16."""
    if not key:
        raise CryptoError("empty key")
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_SIZE)
    if len(nonce) != NONCE_SIZE:
        raise CryptoError("nonce must be 16 bytes")
    stream = _keystream(key, nonce, len(plaintext))
    body = bytes(a ^ b for a, b in zip(plaintext, stream))
    return nonce + body


def decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt`."""
    if len(ciphertext) < NONCE_SIZE:
        raise CryptoError("ciphertext shorter than nonce")
    nonce, body = ciphertext[:NONCE_SIZE], ciphertext[NONCE_SIZE:]
    stream = _keystream(key, nonce, len(body))
    return bytes(a ^ b for a, b in zip(body, stream))


def seal(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC: ciphertext || HMAC(tag_key, ciphertext).

    The MAC key is derived from the encryption key so callers manage a
    single symmetric key per object, as the paper's DEK/MEK do.
    """
    ciphertext = encrypt(key, plaintext)
    tag_key = hashlib.sha256(b"sharoes-mac" + key).digest()
    tag = hmac.new(tag_key, ciphertext, hashlib.sha256).digest()
    return ciphertext + tag


def open_sealed(key: bytes, sealed: bytes) -> bytes:
    """Verify the MAC then decrypt; raises :class:`IntegrityError` on tamper."""
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise CryptoError("sealed payload too short")
    ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    tag_key = hashlib.sha256(b"sharoes-mac" + key).digest()
    expected = hmac.new(tag_key, ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, tag):
        raise IntegrityError("sealed payload failed MAC verification")
    return decrypt(key, ciphertext)
