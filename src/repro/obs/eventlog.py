"""Sampled, ring-buffered JSONL event log on the simulated clock.

A lightweight structured-event sink that rides alongside span tracing:
spans answer "where did the time go", events answer "what happened, in
order".  Three properties keep it benchmark-safe (asserted by
``benchmarks/test_obs_overhead.py``):

* **severity floor** -- events below ``level`` are dropped before any
  formatting work;
* **deterministic sampling** -- ``sample`` keeps that fraction of
  events, decided by a crc32 hash of ``(name, timestamp, sequence)``
  rather than a RNG, so identically-seeded runs log identical lines;
* **ring buffer** -- at most ``capacity`` events are retained; older
  events fall off the front (the ``dropped`` property counts them).

Timestamps come from the shared :class:`~repro.sim.clock.SimClock`
when one is attached (``clock.now`` simulated seconds); without a
clock, events are stamped with their sequence number so ordering is
still total and deterministic.
"""

from __future__ import annotations

import json
import pathlib
import zlib
from collections import deque
from typing import Any

#: Severity levels, syslog-ish spacing so new levels can slot between.
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_SAMPLE_SPACE = 10 ** 6


class EventLog:
    """Bounded, sampled, deterministic structured-event sink."""

    def __init__(self, clock=None, level: str = "info",
                 sample: float = 1.0, capacity: int = 10_000):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; "
                             f"expected one of {sorted(LEVELS)}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be within [0, 1]")
        self.clock = clock
        self.level = level
        self.sample = sample
        self.events: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Events that passed the severity floor and the sampler.
        self.accepted = 0
        #: Events that passed the floor but lost the sampling draw.
        self.sampled_out = 0
        #: Events below the severity floor (cheapest rejection).
        self.suppressed = 0
        self._seq = 0

    @property
    def dropped(self) -> int:
        """Accepted events that have since fallen off the ring."""
        return self.accepted - len(self.events)

    def _keep(self, name: str, timestamp: float) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        digest = zlib.crc32(
            f"{name}|{round(timestamp * 1e9)}|{self._seq}".encode())
        return digest % _SAMPLE_SPACE < self.sample * _SAMPLE_SPACE

    def log(self, level: str, name: str, **fields: Any) -> bool:
        """Record one event; returns True when it was retained."""
        if LEVELS.get(level, 0) < LEVELS[self.level]:
            self.suppressed += 1
            return False
        self._seq += 1
        timestamp = (self.clock.now if self.clock is not None
                     else float(self._seq))
        if not self._keep(name, timestamp):
            self.sampled_out += 1
            return False
        self.accepted += 1
        event = {"t": round(timestamp, 9), "seq": self._seq,
                 "level": level, "event": name}
        if fields:
            event["fields"] = fields
        self.events.append(event)
        return True

    def debug(self, name: str, **fields: Any) -> bool:
        return self.log("debug", name, **fields)

    def info(self, name: str, **fields: Any) -> bool:
        return self.log("info", name, **fields)

    def warn(self, name: str, **fields: Any) -> bool:
        return self.log("warn", name, **fields)

    def error(self, name: str, **fields: Any) -> bool:
        return self.log("error", name, **fields)

    def span_sink(self, span) -> None:
        """Tracer sink adapter: one event per finished root span.

        Attach with ``tracer.add_sink(event_log.span_sink)``.  The
        event is stamped with the span's *end* time so the log stays
        ordered even when the sink runs after the clock moved on.
        """
        level = "error" if span.error is not None else "info"
        if LEVELS[level] < LEVELS[self.level]:
            self.suppressed += 1
            return
        self._seq += 1
        timestamp = span.end if span.end is not None else (
            self.clock.now if self.clock is not None else float(self._seq))
        if not self._keep(span.name, timestamp):
            self.sampled_out += 1
            return
        self.accepted += 1
        event = {"t": round(timestamp, 9), "seq": self._seq,
                 "level": level, "event": f"op.{span.name}",
                 "fields": {"duration": round(span.duration, 9),
                            "children": len(span.children)}}
        if span.error is not None:
            event["fields"]["error"] = span.error
        self.events.append(event)

    def stats(self) -> dict[str, int]:
        return {"accepted": self.accepted,
                "sampled_out": self.sampled_out,
                "suppressed": self.suppressed,
                "dropped": self.dropped,
                "retained": len(self.events)}

    def to_jsonl(self) -> str:
        lines = [json.dumps(event, separators=(",", ":"), sort_keys=True)
                 for event in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_jsonl())
        return path
