"""Machine-readable benchmark reports (``BENCH_*.json``).

Aggregates a run's finished root spans into the per-operation summary the
perf trajectory tracks across PRs:

* ``op -> {seconds: {n, mean, stdev, min, max, p50, p95, p99},
  phases: {resolve, network, crypto, cache, other}, errors}``;
* run totals (span count, simulated seconds, phase sums);
* the cost model's own whole-run breakdown, so a report is
  self-reconciling: phase totals must sum to ``cost_model.total`` to
  within float noise (the acceptance invariant, asserted in tests).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from ..sim.stats import summarize
from .metrics import MetricsRegistry
from .tracing import PHASES, Span, phase_breakdown

#: Schema version stamped into every BENCH_*.json.
BENCH_SCHEMA = 1


def op_report(spans: Iterable[Span]) -> dict[str, Any]:
    """Aggregate finished root spans by operation name."""
    durations: dict[str, list[float]] = {}
    phases: dict[str, dict[str, float]] = {}
    errors: dict[str, int] = {}
    total_spans = 0
    total_seconds = 0.0
    total_phases = {phase: 0.0 for phase in PHASES}
    for span in spans:
        total_spans += 1
        total_seconds += span.duration
        durations.setdefault(span.name, []).append(span.duration)
        breakdown = phase_breakdown(span)
        sink = phases.setdefault(span.name,
                                 {phase: 0.0 for phase in PHASES})
        for phase, seconds in breakdown.items():
            sink[phase] += seconds
            total_phases[phase] += seconds
        if span.error is not None:
            errors[span.name] = errors.get(span.name, 0) + 1
    ops = {}
    for name, series in durations.items():
        ops[name] = {
            "seconds": summarize(series).as_dict(),
            "phases": phases[name],
            "errors": errors.get(name, 0),
        }
    return {
        "ops": ops,
        "totals": {"spans": total_spans, "seconds": total_seconds,
                   "phases": total_phases},
    }


def bench_payload(name: str, report: dict[str, Any],
                  registry: MetricsRegistry | None = None,
                  cost=None, params: dict[str, Any] | None = None
                  ) -> dict[str, Any]:
    """Assemble one BENCH_*.json document."""
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "params": params or {},
        "ops": report["ops"],
        "totals": report["totals"],
    }
    if cost is not None:
        payload["cost_model"] = dict(cost.totals.as_dict(),
                                     total=cost.totals.total)
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    return payload


def write_bench_json(payload: dict[str, Any],
                     out_dir: str | pathlib.Path) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir`` (created if needed)."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
