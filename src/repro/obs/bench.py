"""Machine-readable benchmark reports (``BENCH_*.json``).

Aggregates a run's finished root spans into the per-operation summary the
perf trajectory tracks across PRs:

* ``op -> {seconds: {n, mean, stdev, min, max, p50, p95, p99},
  phases: {resolve, network, crypto, cache, other}, errors}``;
* run totals (span count, simulated seconds, phase sums);
* the cost model's own whole-run breakdown, so a report is
  self-reconciling: phase totals must sum to ``cost_model.total`` to
  within float noise (the acceptance invariant, asserted in tests).

Schema v2 adds an optional ``trace`` section (server-side phase totals
and per-depth resolve attribution from a wire-traced run) and the
:func:`diff_bench` regression gate: given two BENCH documents it
reports wall-clock, request-count and phase deltas per workload and
flags regressions beyond thresholds (wall > 2%, any extra request, by
default).  CI runs the gate against the committed baseline on every
push -- a perf regression fails the build like a test failure.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from ..sim.stats import summarize
from .metrics import MetricsRegistry
from .tracing import PHASES, Span, phase_breakdown

#: Schema version stamped into every BENCH_*.json.  v2 == v1 plus an
#: optional ``trace`` section; v1 documents still load and diff.
BENCH_SCHEMA = 2


def op_report(spans: Iterable[Span]) -> dict[str, Any]:
    """Aggregate finished root spans by operation name."""
    durations: dict[str, list[float]] = {}
    phases: dict[str, dict[str, float]] = {}
    errors: dict[str, int] = {}
    total_spans = 0
    total_seconds = 0.0
    total_phases = {phase: 0.0 for phase in PHASES}
    for span in spans:
        total_spans += 1
        total_seconds += span.duration
        durations.setdefault(span.name, []).append(span.duration)
        breakdown = phase_breakdown(span)
        sink = phases.setdefault(span.name,
                                 {phase: 0.0 for phase in PHASES})
        for phase, seconds in breakdown.items():
            sink[phase] += seconds
            total_phases[phase] += seconds
        if span.error is not None:
            errors[span.name] = errors.get(span.name, 0) + 1
    ops = {}
    for name, series in durations.items():
        ops[name] = {
            "seconds": summarize(series).as_dict(),
            "phases": phases[name],
            "errors": errors.get(name, 0),
        }
    return {
        "ops": ops,
        "totals": {"spans": total_spans, "seconds": total_seconds,
                   "phases": total_phases},
    }


def bench_payload(name: str, report: dict[str, Any],
                  registry: MetricsRegistry | None = None,
                  cost=None, params: dict[str, Any] | None = None,
                  trace: dict[str, Any] | None = None
                  ) -> dict[str, Any]:
    """Assemble one BENCH_*.json document."""
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "params": params or {},
        "ops": report["ops"],
        "totals": report["totals"],
    }
    if cost is not None:
        payload["cost_model"] = dict(cost.totals.as_dict(),
                                     total=cost.totals.total)
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if trace is not None:
        payload["trace"] = trace
    return payload


def write_bench_json(payload: dict[str, Any],
                     out_dir: str | pathlib.Path) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir`` (created if needed)."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- diffing / the regression gate -----------------------------------------


def load_bench(path: str | pathlib.Path) -> dict[str, dict[str, Any]]:
    """Load a BENCH_*.json into ``{workload_name: payload}``.

    Tolerates the three shapes in the trajectory: the per-PR document
    (``{"pr": N, "workloads": {...}}``), a bare single-workload payload
    (``{"schema": ..., "name": ...}``), and schema-1 documents (no
    ``trace`` section).
    """
    doc = json.loads(pathlib.Path(path).read_text())
    if "workloads" in doc:
        return dict(doc["workloads"])
    if "name" in doc:
        return {doc["name"]: doc}
    raise ValueError(f"{path}: not a BENCH document "
                     "(expected 'workloads' or 'name')")


def _wall_seconds(payload: dict[str, Any]) -> float:
    cost = payload.get("cost_model")
    if cost and "total" in cost:
        return float(cost["total"])
    return float(payload.get("totals", {}).get("seconds", 0.0))


def _request_count(payload: dict[str, Any]) -> float | None:
    metrics = payload.get("metrics")
    if metrics and "client.requests" in metrics:
        return float(metrics["client.requests"])
    return None


def _resolve_seconds(payload: dict[str, Any]) -> float | None:
    """Total path-resolution seconds from the schema-v2 ``trace``
    section (summed over walk depths); None for untraced documents."""
    trace = payload.get("trace")
    if not trace:
        return None
    depths = trace.get("resolve_depth")
    if not depths:
        return None
    return sum(float(d.get("seconds", 0.0)) for d in depths.values())


def diff_bench(old: dict[str, dict[str, Any]],
               new: dict[str, dict[str, Any]],
               wall_tol: float = 0.02, request_tol: float = 0.0,
               phase_tol: float | None = None,
               resolve_gates: dict[str, float] | None = None,
               overlap_gates: dict[str, float] | None = None
               ) -> dict[str, Any]:
    """Compare two loaded BENCH documents; flag regressions.

    Gating signals, per workload present in both documents:

    * **wall** -- simulated wall seconds; regression when the new run is
      more than ``wall_tol`` (relative) slower;
    * **requests** -- client wire requests; regression when the new run
      issues more than ``request_tol`` (relative) extra requests (the
      default 0.0 means *any* extra request fails -- request counts are
      deterministic here, so drift is always a real change);
    * **phases** -- per-phase seconds deltas are always *reported*, but
      only gate when ``phase_tol`` is set (phase mix shifts around
      legitimately as optimisations move cost between buckets);
    * **resolve** -- ``resolve_gates={"andrew": 0.5}`` demands the new
      run's path-resolution seconds (trace section, summed over walk
      depths) be at most that fraction of the old run's -- an
      *improvement* floor, not a tolerance.  A gated workload missing
      resolve attribution on either side fails loud rather than
      silently passing (PR 7: the mdcache win must stay locked in);
    * **overlap** -- ``overlap_gates={"postmark": 0.75}`` demands, in
      the *new* document alone, that the ``postmark_concurrent`` entry's
      wall seconds be at most that fraction of the plain ``postmark``
      entry's: the pipelined client's speedup is an acceptance claim
      (PR 10), so losing it fails the gate even though neither run
      individually regressed;
    * **throughput** -- entries that carry an ``ops_per_sec`` field
      (the many-client harness section) gate on throughput instead of
      wall seconds: a drop beyond ``wall_tol`` (relative) regresses, as
      does a run whose final fsck was not clean.  Latency percentiles
      are reported alongside.

    Workloads present in only one document are reported as added or
    removed; a removed workload is flagged (a shrinking benchmark
    surface can silently hide a regression).
    """
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            regressions.append(f"{name}: workload removed from new run")
            rows.append({"workload": name, "status": "removed"})
            continue
        if "ops_per_sec" in new[name]:
            rows.append(_diff_throughput(name, old.get(name), new[name],
                                         wall_tol, regressions))
            continue
        if name not in old:
            rows.append({"workload": name, "status": "added"})
            continue
        old_wall = _wall_seconds(old[name])
        new_wall = _wall_seconds(new[name])
        wall_delta = ((new_wall - old_wall) / old_wall if old_wall
                      else 0.0)
        row: dict[str, Any] = {
            "workload": name, "status": "ok",
            "wall_old": round(old_wall, 6), "wall_new": round(new_wall, 6),
            "wall_delta": round(wall_delta, 6),
        }
        if wall_delta > wall_tol:
            row["status"] = "regressed"
            regressions.append(
                f"{name}: wall {old_wall:.3f}s -> {new_wall:.3f}s "
                f"(+{wall_delta * 100:.1f}% > {wall_tol * 100:.1f}%)")
        old_req = _request_count(old[name])
        new_req = _request_count(new[name])
        if old_req is not None and new_req is not None:
            req_delta = ((new_req - old_req) / old_req if old_req
                         else 0.0)
            row["requests_old"] = int(old_req)
            row["requests_new"] = int(new_req)
            row["requests_delta"] = round(req_delta, 6)
            if req_delta > request_tol:
                row["status"] = "regressed"
                regressions.append(
                    f"{name}: requests {int(old_req)} -> {int(new_req)} "
                    f"(+{req_delta * 100:.1f}% > "
                    f"{request_tol * 100:.1f}%)")
        old_phases = old[name].get("totals", {}).get("phases", {})
        new_phases = new[name].get("totals", {}).get("phases", {})
        phase_deltas = {}
        for phase in PHASES:
            before = float(old_phases.get(phase, 0.0))
            after = float(new_phases.get(phase, 0.0))
            phase_deltas[phase] = round(after - before, 6)
            if (phase_tol is not None and before > 0
                    and (after - before) / before > phase_tol):
                row["status"] = "regressed"
                regressions.append(
                    f"{name}: phase {phase} {before:.3f}s -> "
                    f"{after:.3f}s (> {phase_tol * 100:.1f}%)")
        row["phase_deltas"] = phase_deltas
        if resolve_gates and name in resolve_gates:
            ratio = resolve_gates[name]
            old_res = _resolve_seconds(old[name])
            new_res = _resolve_seconds(new[name])
            if old_res is None or new_res is None:
                row["status"] = "regressed"
                regressions.append(
                    f"{name}: resolve gate x{ratio:g} set but "
                    f"{'old' if old_res is None else 'new'} document "
                    "has no resolve attribution (trace section)")
            else:
                row["resolve_old"] = round(old_res, 6)
                row["resolve_new"] = round(new_res, 6)
                if new_res > ratio * old_res:
                    row["status"] = "regressed"
                    regressions.append(
                        f"{name}: resolve {old_res:.3f}s -> "
                        f"{new_res:.3f}s (> x{ratio:g} floor "
                        f"= {ratio * old_res:.3f}s)")
        rows.append(row)
    for name, ratio in sorted((overlap_gates or {}).items()):
        rows.append(_gate_overlap(name, ratio, new, regressions))
    return {"rows": rows, "regressions": regressions,
            "ok": not regressions}


def _diff_throughput(name: str, old: dict[str, Any] | None,
                     new: dict[str, Any], tol: float,
                     regressions: list[str]) -> dict[str, Any]:
    """Gate a many-client throughput entry on ops/sec and fsck."""
    row: dict[str, Any] = {
        "workload": name, "status": "ok", "kind": "throughput",
        "ops_per_sec_new": round(float(new["ops_per_sec"]), 6),
        "latency_new": dict(new.get("latency_s", {})),
    }
    if not new.get("fsck_clean", False):
        row["status"] = "regressed"
        regressions.append(
            f"{name}: final fsck was not clean "
            f"({new.get('fsck_errors', '?')} errors)")
    if old is None or "ops_per_sec" not in old:
        if row["status"] == "ok":
            row["status"] = "added"
        return row
    old_tput = float(old["ops_per_sec"])
    new_tput = float(new["ops_per_sec"])
    delta = (new_tput - old_tput) / old_tput if old_tput else 0.0
    row.update(ops_per_sec_old=round(old_tput, 6),
               ops_per_sec_delta=round(delta, 6),
               latency_old=dict(old.get("latency_s", {})))
    if delta < -tol:
        row["status"] = "regressed"
        regressions.append(
            f"{name}: throughput {old_tput:.3f} -> {new_tput:.3f} "
            f"ops/s ({delta * 100:+.1f}% < -{tol * 100:.1f}%)")
    return row


def _gate_overlap(name: str, ratio: float,
                  new: dict[str, dict[str, Any]],
                  regressions: list[str]) -> dict[str, Any]:
    """The within-document concurrency speedup floor."""
    concurrent_name = f"{name}_concurrent"
    row: dict[str, Any] = {"workload": f"{name}~overlap",
                           "status": "ok", "kind": "overlap",
                           "ratio": ratio}
    if name not in new or concurrent_name not in new:
        missing = name if name not in new else concurrent_name
        row["status"] = "regressed"
        regressions.append(
            f"{name}: overlap gate x{ratio:g} set but the new document "
            f"has no {missing!r} entry")
        return row
    base = _wall_seconds(new[name])
    concurrent = _wall_seconds(new[concurrent_name])
    row["wall_old"] = round(base, 6)
    row["wall_new"] = round(concurrent, 6)
    row["wall_delta"] = round((concurrent - base) / base if base else 0.0,
                              6)
    if concurrent > ratio * base:
        row["status"] = "regressed"
        regressions.append(
            f"{name}: concurrent wall {concurrent:.3f}s exceeds "
            f"x{ratio:g} floor of sequential {base:.3f}s "
            f"(= {ratio * base:.3f}s); the pipelining win regressed")
    return row


def format_diff_table(diff: dict[str, Any],
                      title: str = "bench diff") -> str:
    from ..workloads.report import format_table
    rows = []
    for row in diff["rows"]:
        if row.get("kind") == "throughput":
            tput = (f"{row['ops_per_sec_old']:.3f} -> "
                    f"{row['ops_per_sec_new']:.3f} ops/s"
                    if "ops_per_sec_old" in row else
                    f"{row['ops_per_sec_new']:.3f} ops/s")
            p95 = row["latency_new"].get("p95")
            rows.append([row["workload"], row["status"], tput,
                         f"{row.get('ops_per_sec_delta', 0.0) * 100:+.2f}%",
                         "-", f"p95 {p95:.3f}s" if p95 is not None
                         else "-"])
            continue
        if row.get("status") in ("added", "removed") \
                or "wall_old" not in row:
            rows.append([row["workload"], row["status"], "-", "-", "-",
                         "-"])
            continue
        requests = ("-" if "requests_new" not in row else
                    f"{row['requests_old']} -> {row['requests_new']}")
        resolve = ("-" if "resolve_new" not in row else
                   f"{row['resolve_old']:.3f} -> {row['resolve_new']:.3f}")
        rows.append([row["workload"], row["status"],
                     f"{row['wall_old']:.3f} -> {row['wall_new']:.3f}",
                     f"{row['wall_delta'] * 100:+.2f}%", requests,
                     resolve])
    return format_table(title, ["workload", "status", "wall s",
                                "wall delta", "requests", "resolve s"],
                        rows)


def bench_trajectory(results_dir: str | pathlib.Path) -> list[dict]:
    """Summarise every per-PR ``BENCH_<n>.json`` under ``results_dir``.

    Returns one row per (PR, workload) with wall seconds and request
    counts -- the data behind ``repro bench --list``.
    """
    results_dir = pathlib.Path(results_dir)
    rows: list[dict] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        stem = path.stem.removeprefix("BENCH_")
        if not stem.isdigit():
            continue  # figure-specific artifacts, not trajectory points
        for name, payload in sorted(load_bench(path).items()):
            requests = _request_count(payload)
            rows.append({"pr": int(stem), "workload": name,
                         "wall_s": round(_wall_seconds(payload), 6),
                         "requests": (int(requests)
                                      if requests is not None else None),
                         "schema": payload.get("schema"),
                         "traced": "trace" in payload})
    rows.sort(key=lambda row: (row["pr"], row["workload"]))
    return rows


def format_trajectory_table(rows: list[dict],
                            title: str = "bench trajectory") -> str:
    from ..workloads.report import format_table
    table = [[str(row["pr"]), row["workload"], f"{row['wall_s']:.3f}",
              str(row["requests"]) if row["requests"] is not None else "-",
              "yes" if row["traced"] else "-"]
             for row in rows]
    return format_table(title, ["pr", "workload", "wall s", "requests",
                                "traced"], table)
