"""Observability: unified metrics registry + operation span tracing.

The simulated analogue of the paper's evaluation instrumentation: every
filesystem operation decomposes into resolve / crypto / network / cache
phases (Figure 13), every component's counters hang off one registry
tree, and exporters turn both into JSON-lines span logs, Prometheus text
or human tables (``repro stats`` / ``repro trace``).

Wire tracing (``wiretrace``) extends the span tree across the wire:
trace context rides each frame, a :class:`TracedServer` produces
server-side decode/dispatch/disk/verify spans, and ``stitch`` grafts
them back under the client spans that issued them.  ``profile`` renders
stitched trees as folded stacks / speedscope JSON; ``eventlog`` is a
sampled ring-buffered structured-event sink; ``bench`` adds the
``--diff`` perf-regression gate.

Import layering: this package sits *below* fs/ and workloads/ -- the
client imports the tracer, so nothing here may import the client at
module scope (export/bench use lazy imports where needed).
"""

from .eventlog import LEVELS, EventLog
from .metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, bind_cache_stats, bind_cost_model,
                      bind_crypto_counters, bind_server_stats)
from .tracing import PHASES, Span, Tracer, next_trace_id, phase_breakdown, \
    traced
from .wiretrace import (DEFAULT_SERVER_PROFILE, ServerCostProfile,
                        TraceContext, TracedServer, stitch)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "bind_cache_stats",
    "bind_server_stats",
    "bind_crypto_counters",
    "bind_cost_model",
    "Tracer",
    "Span",
    "PHASES",
    "phase_breakdown",
    "traced",
    "next_trace_id",
    "TraceContext",
    "TracedServer",
    "ServerCostProfile",
    "DEFAULT_SERVER_PROFILE",
    "stitch",
    "EventLog",
    "LEVELS",
]
