"""End-to-end wire tracing: trace context across the client/SSP boundary.

Client spans stop at the ``network`` span today -- everything the SSP
does (frame decode, disk, fence/CAS verification) is invisible, so the
44 % of andrew wall-clock spent in path resolve cannot be attributed
past the wire.  This module closes the loop:

* :class:`TraceContext` -- the ``trace_id``/``parent_span_id`` pair a
  client attaches to wire frames (``storage.wire`` encodes it behind an
  opcode flag bit, so untraced frames stay byte-identical);
* :class:`TracedServer` -- a :class:`~repro.storage.resilient.ServerWrapper`
  that records one ``server.<op>`` span per request it forwards, with
  ``decode`` / ``dispatch`` / ``disk`` / ``verify`` children and a
  service tag (shard-ready: one tree per server);
* :func:`stitch` -- grafts the server spans under the exact client span
  that issued each request, producing a single end-to-end trace tree.

Server spans live on a **synthetic timeline**: durations come from a
deterministic :class:`ServerCostProfile`, and the shared simulated clock
is never advanced.  Attribution without perturbation -- a traced run
charges exactly the same simulated seconds as an untraced one, which is
what lets the CI perf-regression gate diff traced BENCH files against
untraced baselines.  By construction the ``decode``/``disk``/``verify``
self-times of a server span partition its wall exactly.

The SSP does no cryptography in SHAROES (ciphertext passes through
opaquely), so the "crypto" slot of a conventional server profile shows
up here as ``verify``: the fence-epoch and compare-and-swap checks the
server performs on guarded mutations.
"""

from __future__ import annotations

import contextvars
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..storage.resilient import ServerWrapper
from .tracing import Span

__all__ = [
    "TraceContext",
    "ServerCostProfile",
    "DEFAULT_SERVER_PROFILE",
    "TracedServer",
    "current_wire_context",
    "push_wire_context",
    "pop_wire_context",
    "stitch",
    "server_phase_totals",
]


@dataclass(frozen=True)
class TraceContext:
    """Correlation header carried on wire frames (16 bytes encoded)."""

    trace_id: int
    parent_span_id: int | None = None


# Wire handlers (storage.wire._Handler) install the decoded frame
# context here so an in-process TracedServer behind a TCP loopback sees
# the same context a directly-wrapped one gets from ``context_fn``.
_WIRE_CONTEXT: contextvars.ContextVar[TraceContext | None] = \
    contextvars.ContextVar("sharoes_wire_trace_context", default=None)


def current_wire_context() -> TraceContext | None:
    return _WIRE_CONTEXT.get()


def push_wire_context(ctx: TraceContext | None):
    return _WIRE_CONTEXT.set(ctx)


def pop_wire_context(token) -> None:
    _WIRE_CONTEXT.reset(token)


@dataclass(frozen=True)
class ServerCostProfile:
    """Deterministic per-request SSP time model (synthetic seconds).

    These seconds exist only inside server spans -- they are *never*
    charged to the cost model or the shared clock.  Magnitudes follow
    the 2008 hardware the paper benchmarks: ~µs frame decode, one disk
    seek plus streaming transfer, ~µs per signature-free guard check.
    """

    decode_fixed_s: float = 2e-6
    decode_per_byte_s: float = 5e-10
    disk_fixed_s: float = 5e-5
    disk_per_byte_s: float = 2e-8
    verify_fixed_s: float = 5e-6


DEFAULT_SERVER_PROFILE = ServerCostProfile()

#: Server span ids live far above any client tracer's sequential ids so
#: stitched trees never collide; each TracedServer gets its own block.
_SERVER_ID_BASE = 1 << 40
_ID_STRIDE = 1 << 32
_SERVER_COUNT = 0


def _next_id_block() -> int:
    global _SERVER_COUNT
    _SERVER_COUNT += 1
    return _SERVER_ID_BASE + _SERVER_COUNT * _ID_STRIDE


def _request_bytes(blob_id, payload) -> int:
    return len(str(blob_id)) + (len(payload) if payload else 0) + 16


class TracedServer(ServerWrapper):
    """Record a ``server.<op>`` span tree for every request forwarded.

    Sits *below* the retrying transport, so each retry attempt produces
    its own server span (failed attempts error-marked) and the span
    count reconciles with ``transport.attempts``.  The trace context is
    taken from ``context_fn`` (in-process clients) or from the wire
    handler's contextvar (TCP clients); with neither, spans are still
    recorded but stay unparented.
    """

    def __init__(self, inner, clock, service: str = "ssp",
                 context_fn: Callable[[], TraceContext | None] | None = None,
                 profile: ServerCostProfile = DEFAULT_SERVER_PROFILE,
                 max_spans: int = 200_000):
        super().__init__(inner, name=f"traced({inner.name})")
        self.clock = clock
        self.service = service
        self.context_fn = context_fn
        self.profile = profile
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self._next_id = _next_id_block()

    # -- span plumbing ----------------------------------------------------

    def _ctx(self) -> TraceContext | None:
        if self.context_fn is not None:
            ctx = self.context_fn()
            if ctx is not None:
                return ctx
        return current_wire_context()

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _decode_seconds(self, request_bytes: int) -> float:
        return (self.profile.decode_fixed_s
                + self.profile.decode_per_byte_s * request_bytes)

    def _root(self, op: str, ctx: TraceContext | None, start: float,
              **attrs: Any) -> Span:
        merged = {"service": self.service, "op": op}
        if ctx is not None:
            merged["trace_id"] = ctx.trace_id
        merged.update(attrs)
        return Span(f"server.{op}", self._new_id(),
                    ctx.parent_span_id if ctx is not None else None,
                    start, merged)

    def _leaf(self, name: str, parent: Span, start: float,
              seconds: float, category: str) -> Span:
        span = Span(name, self._new_id(), parent.span_id, start, {})
        span.end = start + seconds
        if seconds:
            span.add_cost(category, seconds)
        parent.children.append(span)
        return span

    def _emit(self, op: str, ctx: TraceContext | None, start: float,
              decode_s: float, disk_s: float, verify_s: float,
              error: str | None = None, **attrs: Any) -> Span:
        """One request = root -> [decode, dispatch -> [disk, verify]].

        Children are laid out sequentially from ``start``, so the
        decode/disk/verify self-times partition the root's wall exactly.
        """
        root = self._root(op, ctx, start, **attrs)
        cursor = self._leaf("decode", root, start, decode_s, "decode").end
        dispatch = Span("dispatch", self._new_id(), root.span_id,
                        cursor, {})
        root.children.append(dispatch)
        if disk_s:
            cursor = self._leaf("disk", dispatch, cursor, disk_s,
                                "disk").end
        if verify_s:
            cursor = self._leaf("verify", dispatch, cursor, verify_s,
                                "verify").end
        dispatch.end = cursor
        root.end = cursor
        root.error = error
        self.spans.append(root)
        return root

    def _observe(self, op: str, request_bytes: int, call,
                 success_cost, error_cost=None, **attrs: Any):
        ctx = self._ctx()
        start = self.clock.now
        decode_s = self._decode_seconds(request_bytes)
        try:
            result = call()
        except Exception as exc:
            disk_s, verify_s = (error_cost(exc) if error_cost is not None
                                else (0.0, 0.0))
            self._emit(op, ctx, start, decode_s, disk_s, verify_s,
                       error=type(exc).__name__, **attrs)
            raise
        disk_s, verify_s = success_cost(result)
        self._emit(op, ctx, start, decode_s, disk_s, verify_s, **attrs)
        return result

    def _lookup_cost(self, exc: Exception) -> tuple[float, float]:
        """Errors that prove the store was consulted still cost a seek;
        guard rejections (CAS/fence) additionally cost the check."""
        from ..errors import (BlobNotFound, CasConflictError,
                              StaleEpochError)
        if isinstance(exc, (CasConflictError, StaleEpochError)):
            return self.profile.disk_fixed_s, self.profile.verify_fixed_s
        if isinstance(exc, BlobNotFound):
            return self.profile.disk_fixed_s, 0.0
        return 0.0, 0.0

    # -- traced operations ------------------------------------------------

    def put(self, blob_id, payload):
        prof = self.profile
        size = len(payload)
        return self._observe(
            "put", _request_bytes(blob_id, payload),
            lambda: self.inner.put(blob_id, payload),
            lambda _r: (prof.disk_fixed_s + prof.disk_per_byte_s * size,
                        0.0),
            self._lookup_cost, kind=blob_id.kind, bytes=size)

    def get(self, blob_id):
        prof = self.profile
        return self._observe(
            "get", _request_bytes(blob_id, None),
            lambda: self.inner.get(blob_id),
            lambda r: (prof.disk_fixed_s + prof.disk_per_byte_s * len(r),
                       0.0),
            self._lookup_cost, kind=blob_id.kind)

    def delete(self, blob_id):
        prof = self.profile
        return self._observe(
            "delete", _request_bytes(blob_id, None),
            lambda: self.inner.delete(blob_id),
            lambda _r: (prof.disk_fixed_s, 0.0),
            self._lookup_cost, kind=blob_id.kind)

    def exists(self, blob_id):
        prof = self.profile
        return self._observe(
            "exists", _request_bytes(blob_id, None),
            lambda: self.inner.exists(blob_id),
            lambda _r: (prof.disk_fixed_s, 0.0),
            self._lookup_cost, kind=blob_id.kind)

    def put_if(self, blob_id, payload, expected):
        prof = self.profile
        size = len(payload)
        return self._observe(
            "put_if", _request_bytes(blob_id, payload),
            lambda: self.inner.put_if(blob_id, payload, expected),
            lambda _r: (prof.disk_fixed_s + prof.disk_per_byte_s * size,
                        prof.verify_fixed_s),
            self._lookup_cost, kind=blob_id.kind, bytes=size)

    def put_fenced(self, blob_id, payload, fence, epoch):
        prof = self.profile
        size = len(payload)
        return self._observe(
            "put_fenced", _request_bytes(blob_id, payload),
            lambda: self.inner.put_fenced(blob_id, payload, fence, epoch),
            lambda _r: (prof.disk_fixed_s + prof.disk_per_byte_s * size,
                        prof.verify_fixed_s),
            self._lookup_cost, kind=blob_id.kind, bytes=size)

    def delete_fenced(self, blob_id, fence, epoch):
        prof = self.profile
        return self._observe(
            "delete_fenced", _request_bytes(blob_id, None),
            lambda: self.inner.delete_fenced(blob_id, fence, epoch),
            lambda _r: (prof.disk_fixed_s, prof.verify_fixed_s),
            self._lookup_cost, kind=blob_id.kind)

    def batch(self, ops):
        """One span for the frame, one child per attempted sub-op.

        Delegates to ``inner.batch`` (not ``apply_batch`` through this
        wrapper) so batch semantics stay at the backend and sub-op spans
        are reconstructed from the (op, reply) pairs afterwards.
        """
        ops = list(ops)
        ctx = self._ctx()
        start = self.clock.now
        frame_bytes = sum(_request_bytes(op.blob_id, op.payload)
                          for op in ops) + 16
        decode_s = self._decode_seconds(frame_bytes)
        try:
            replies = self.inner.batch(ops)
        except Exception as exc:
            self._emit("batch", ctx, start, decode_s, 0.0, 0.0,
                       error=type(exc).__name__, count=len(ops))
            raise
        root = self._root("batch", ctx, start, count=len(ops))
        cursor = self._leaf("decode", root, start, decode_s, "decode").end
        dispatch = Span("dispatch", self._new_id(), root.span_id,
                        cursor, {})
        root.children.append(dispatch)
        for index, (op, reply) in enumerate(zip(ops, replies)):
            if reply.status == "unattempted":
                continue
            disk_s, verify_s = self._sub_costs(op, reply)
            attrs: dict[str, Any] = {"index": index, "kind": op.kind,
                                     "status": reply.status}
            sub_ctx = getattr(op, "ctx", None)
            if sub_ctx is not None:
                attrs["trace_id"] = sub_ctx.trace_id
                attrs["client_span_id"] = sub_ctx.parent_span_id
            sub = Span(f"server.{op.kind}", self._new_id(),
                       dispatch.span_id, cursor, attrs)
            if disk_s:
                cursor = self._leaf("disk", sub, cursor, disk_s,
                                    "disk").end
            if verify_s:
                cursor = self._leaf("verify", sub, cursor, verify_s,
                                    "verify").end
            sub.end = cursor
            if reply.status == "error":
                sub.error = reply.message or "error"
            dispatch.children.append(sub)
        dispatch.end = cursor
        root.end = cursor
        self.spans.append(root)
        return replies

    def _sub_costs(self, op, reply) -> tuple[float, float]:
        prof = self.profile
        guarded = op.kind in ("put_if", "put_fenced", "delete_fenced")
        verify_s = prof.verify_fixed_s if guarded else 0.0
        if reply.status == "ok":
            if op.kind == "get":
                size = len(reply.payload or b"")
            elif op.kind in ("put", "put_if", "put_fenced"):
                size = len(op.payload or b"")
            else:
                size = 0
            return prof.disk_fixed_s + prof.disk_per_byte_s * size, verify_s
        if reply.status == "missing":
            return prof.disk_fixed_s, verify_s
        if reply.status in ("conflict", "fenced"):
            return prof.disk_fixed_s, prof.verify_fixed_s
        return 0.0, 0.0  # transient/error: died before the store

    # -- reporting --------------------------------------------------------

    def phase_totals(self) -> dict[str, Any]:
        """Aggregate server-side attribution for the BENCH trace block."""
        phases = {"decode": 0.0, "disk": 0.0, "verify": 0.0}
        wall = 0.0
        errors = 0
        for root in self.spans:
            wall += root.duration
            if root.error is not None:
                errors += 1
            for node in root.walk():
                for category, seconds in node.self_costs.items():
                    if category in phases:
                        phases[category] += seconds
        return {"service": self.service, "spans": len(self.spans),
                "wall": wall, "errors": errors, "phases": phases}


def server_phase_totals(servers: Iterable[TracedServer]) -> list[dict]:
    return [server.phase_totals() for server in servers]


def _as_dict(span) -> dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def stitch(client_spans: Iterable,
           server_spans: Iterable) -> tuple[list[dict], list[dict]]:
    """Graft server span trees under the client spans that issued them.

    Works on ``to_dict`` copies -- the live client spans are never
    mutated (server self-cost categories would otherwise corrupt the
    client-side phase reconciliation).  Returns ``(roots, orphans)``:
    the stitched client trees plus any server spans whose parent id
    matched no client span (e.g. context-free requests).
    """
    roots = [_as_dict(span) for span in client_spans]
    index: dict[int, dict] = {}

    def register(node: dict) -> None:
        index[node["span_id"]] = node
        for child in node.get("children", ()):
            register(child)

    for root in roots:
        register(root)
    orphans: list[dict] = []
    for span in server_spans:
        doc = _as_dict(span)
        parent = index.get(doc.get("parent_id"))
        if parent is None:
            orphans.append(doc)
        else:
            parent.setdefault("children", []).append(doc)
    return roots, orphans
