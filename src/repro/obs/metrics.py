"""The unified metrics registry.

One tree of named metrics per client (and per benchmark environment),
replacing four disconnected ad-hoc structs: ``CacheStats`` (fs/cache),
``ServerStats`` (storage/accounting), ``OpCounters`` (crypto/provider)
and ``CostBreakdown`` (sim/costmodel).  Those structs stay where they are
-- they are cheap and battle-tested -- and are *adapted* into the
registry through pull-based collectors, so attaching observability adds
zero work to the hot paths.

Metric kinds:

* :class:`Counter`  -- monotonically increasing integer (push);
* :class:`Gauge`    -- instantaneous value, optionally computed by a
  callback at read time (how the legacy structs are adapted);
* :class:`Histogram`-- fixed-bucket latency histogram with estimated
  p50/p95/p99 (shares :class:`~repro.sim.stats.Percentiles` semantics
  with the benchmark ``Summary``).

Names are dot-separated paths ("client.cache.hits"); exporters may remap
them (Prometheus flattens dots to underscores).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterator

from ..sim.stats import Percentiles

#: Default latency buckets (simulated seconds): log-ish spacing from
#: 1 ms (cache-hit metadata ops) to 60 s (WAN-bound 1 MB transfers).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Instantaneous value; ``fn`` makes it a read-time callback."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str, help: str = "",
                 fn: Callable[[], float] | None = None):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name}: callback gauges are read-only")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram of simulated latencies.

    Buckets are cumulative-upper-bound style (Prometheus ``le``); values
    above the last bound land in the implicit +Inf bucket.  Percentiles
    are estimated by linear interpolation inside the containing bucket,
    clamped to the observed min/max so tiny benchmarks do not report a
    p99 beyond anything that actually happened.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
                buckets):
            raise ValueError("histogram buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile, q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.count:
            return 0.0
        rank = q / 100 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self.bounds[index - 1] if index else 0.0
                upper = (self.bounds[index]
                         if index < len(self.bounds) else self.maximum)
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(
                    1.0, fraction))
                return max(self.minimum, min(self.maximum, estimate))
        return self.maximum

    def percentiles(self) -> Percentiles:
        return Percentiles(p50=self.percentile(50),
                           p95=self.percentile(95),
                           p99=self.percentile(99))

    def summary(self) -> dict[str, float]:
        out = {"count": self.count, "mean": self.mean,
               "min": self.minimum if self.count else 0.0,
               "max": self.maximum if self.count else 0.0}
        out.update(self.percentiles().as_dict())
        return out


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """One tree of metrics, plus pull-based legacy-struct collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with one name returns the same object, so instrumentation sites never
    need to coordinate.  ``register_source`` adapts an existing stats
    struct: the callable returns ``{suffix: value}`` and is invoked only
    at snapshot/export time.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._sources: dict[str, Callable[[], dict[str, float]]] = {}
        self._source_help: dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def _get_or_create(self, name: str, kind: type, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "",
              fn: Callable[[], float] | None = None) -> Gauge:
        return self._get_or_create(name, Gauge, help=help, fn=fn)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help,
                                   buckets=buckets)

    def register_source(self, prefix: str,
                        collect: Callable[[], dict[str, float]],
                        help: str = "") -> None:
        """Adapt a legacy stats struct under ``prefix``; ``help`` feeds
        the Prometheus exporter's ``# HELP`` lines."""
        self._sources[prefix] = collect
        if help:
            self._source_help[prefix] = help

    def source_help(self, prefix: str) -> str:
        return self._source_help.get(prefix, "")

    # -- reading -----------------------------------------------------------

    def metrics(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Read one value from the snapshot tree (metrics + sources)."""
        snap = self.snapshot()
        if name not in snap:
            raise KeyError(name)
        return snap[name]

    def snapshot(self) -> dict[str, float]:
        """Flattened name -> value map of every metric and source.

        Histograms contribute ``name.count``/``.mean``/``.p50``/... so
        the snapshot is always scalar-valued and diffable.
        """
        out: dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                for suffix, value in metric.summary().items():
                    out[f"{name}.{suffix}"] = value
            else:
                out[name] = metric.value
        for prefix, collect in self._sources.items():
            for suffix, value in collect().items():
                out[f"{prefix}.{suffix}"] = value
        return dict(sorted(out.items()))


# -- adapters for the four legacy structs ---------------------------------


def bind_cache_stats(registry: MetricsRegistry, cache,
                     prefix: str = "client.cache") -> None:
    """Adapt an :class:`~repro.fs.cache.LruCache` (and its CacheStats)."""

    def collect() -> dict[str, float]:
        stats = cache.stats
        return {"hits": stats.hits, "misses": stats.misses,
                "evictions": stats.evictions,
                "insertions": stats.insertions,
                "replacements": stats.replacements,
                "rejected": stats.rejected,
                "hit_rate": stats.hit_rate,
                "used_bytes": cache.used_bytes,
                "entries": len(cache)}

    registry.register_source(prefix, collect,
                             help="client metadata/data LRU cache stats")


def bind_server_stats(registry: MetricsRegistry, server,
                      prefix: str = "ssp") -> None:
    """Adapt a storage server's :class:`ServerStats`."""

    def collect() -> dict[str, float]:
        stats = server.stats
        out = {"puts": stats.puts, "gets": stats.gets,
               "deletes": stats.deletes, "misses": stats.misses,
               "bytes_received": stats.bytes_received,
               "bytes_served": stats.bytes_served,
               "bytes_freed": stats.bytes_freed}
        for kind, count in stats.puts_by_kind.items():
            out[f"puts_by_kind.{kind}"] = count
        for kind, count in stats.gets_by_kind.items():
            out[f"gets_by_kind.{kind}"] = count
        for kind, count in stats.deletes_by_kind.items():
            out[f"deletes_by_kind.{kind}"] = count
        return out

    registry.register_source(prefix, collect,
                             help="storage server operation/byte counters")


def bind_crypto_counters(registry: MetricsRegistry, provider,
                         prefix: str = "client.crypto") -> None:
    """Adapt a :class:`CryptoProvider`'s OpCounters."""

    def collect() -> dict[str, float]:
        counters = provider.counters
        out: dict[str, float] = {}
        for kind, count in counters.ops.items():
            out[f"ops.{kind}"] = count
        for kind, num in counters.op_bytes.items():
            out[f"bytes.{kind}"] = num
        for kind, blocks in counters.pk_blocks.items():
            out[f"pk_blocks.{kind}"] = blocks
        return out

    registry.register_source(prefix, collect,
                             help="crypto provider op/byte/pk-block counters")


def bind_transport(registry: MetricsRegistry, transport,
                   prefix: str = "transport") -> None:
    """Adapt a :class:`~repro.storage.resilient.ResilientTransport`.

    Exposes the retry/backoff/breaker counters under ``transport.*``;
    ``breaker.state`` is 0 closed / 1 half-open / 2 open.  See
    docs/ROBUSTNESS.md for how these reconcile with injected faults.
    """
    from ..storage.resilient import _BREAKER_GAUGE

    def collect() -> dict[str, float]:
        return {"attempts": transport.attempts,
                "retries": transport.retries,
                "failures": transport.failed_attempts,
                "giveups": transport.giveups,
                "degraded_reads": transport.degraded_reads,
                "backoff_seconds": transport.backoff_seconds,
                "breaker.opens": transport.breaker_opens,
                "breaker.rejections": transport.breaker_rejections,
                "breaker.state": _BREAKER_GAUGE[transport.breaker_state]}

    registry.register_source(prefix, collect,
                             help="transport retry/backoff/breaker counters")


def bind_cost_model(registry: MetricsRegistry, cost,
                    prefix: str = "client.cost") -> None:
    """Adapt a :class:`CostModel`'s running CostBreakdown + clock."""

    def collect() -> dict[str, float]:
        out = {f"seconds.{category}": seconds
               for category, seconds in cost.totals.seconds.items()}
        out["seconds.total"] = cost.totals.total
        out["clock"] = cost.clock.now
        return out

    registry.register_source(prefix, collect,
                             help="simulated cost-model seconds by category")
