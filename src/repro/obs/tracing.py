"""Hierarchical operation span tracing on the simulated clock.

Every public filesystem operation opens a *root span*; internals open
child spans ("resolve", "network", "cache", ...).  Span timestamps come
from the :class:`~repro.sim.clock.SimClock`, and the cost model forwards
every charge to the innermost open span -- so a span's duration equals
the simulated seconds charged inside it, and the per-phase decomposition
of an operation reconciles *exactly* with the whole-run
:class:`~repro.sim.costmodel.CostBreakdown` (the acceptance invariant of
the paper's Figure 13 reproduction).

Phase attribution rules (see :func:`phase_breakdown`):

* any charge under a ``resolve`` span is the path-walk phase (metadata
  fetch + decrypt + verify while resolving a path);
* any charge under a ``cache`` span is cache bookkeeping (zero simulated
  seconds today -- cache hits are free in the 2008 model -- but the slot
  exists so a future cost model can price deserialization);
* remaining charges split by cost category: network / crypto / other.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

from ..errors import IntegrityError
from ..sim.clock import SimClock
from ..sim.costmodel import CRYPTO, NETWORK
from .metrics import MetricsRegistry

#: The phase keys of a per-operation breakdown, in reporting order.
PHASES = ("resolve", "network", "crypto", "cache", "other")

#: Process-wide trace-id allocator (deterministic: a plain counter, so
#: two identically-seeded runs mint identical ids in the same order).
_TRACE_COUNTER = 0


def next_trace_id() -> int:
    """Allocate a fresh trace id for one client's span stream."""
    global _TRACE_COUNTER
    _TRACE_COUNTER += 1
    return _TRACE_COUNTER


class Span:
    """One timed region; durations are simulated seconds."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "end",
                 "children", "self_costs", "error")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 start: float, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self.self_costs: dict[str, float] = {}
        self.error: str | None = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def add_cost(self, category: str, seconds: float) -> None:
        self.self_costs[category] = (
            self.self_costs.get(category, 0.0) + seconds)

    def total_costs(self) -> dict[str, float]:
        """Category -> seconds over this span and all descendants."""
        out = dict(self.self_costs)
        for child in self.children:
            for category, seconds in child.total_costs().items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "duration": round(self.duration, 9),
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.self_costs:
            out["costs"] = {k: round(v, 9)
                            for k, v in self.self_costs.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration:.6f}s, "
                f"children={len(self.children)})")


def phase_breakdown(span: Span) -> dict[str, float]:
    """Decompose one root span into the PHASES buckets.

    Every simulated second charged inside the span lands in exactly one
    bucket, so ``sum(phase_breakdown(s).values()) == s.duration``.
    """
    out = {phase: 0.0 for phase in PHASES}

    def visit(node: Span, phase: str | None) -> None:
        here = phase
        if here is None and node.name in ("resolve", "cache"):
            here = node.name
        for category, seconds in node.self_costs.items():
            if here is not None:
                out[here] += seconds
            elif category == NETWORK:
                out["network"] += seconds
            elif category == CRYPTO:
                out["crypto"] += seconds
            else:
                out["other"] += seconds
        for child in node.children:
            visit(child, here)

    visit(span, None)
    return out


class _SpanScope:
    """Class-based context manager for one span.

    Hot path: a hand-rolled ``__enter__``/``__exit__`` pair costs a
    fraction of the generator-``contextmanager`` machinery, and spans
    open for every cache lookup and block decrypt.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack
        span = Span(name=self._name, span_id=tracer._next_id,
                    parent_id=stack[-1].span_id if stack else None,
                    start=tracer.clock.now, attrs=self._attrs)
        tracer._next_id += 1
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        tracer = self._tracer
        span.end = tracer.clock.now
        tracer._stack.pop()
        integrity_failure = False
        if exc is not None:
            span.error = type(exc).__name__
            integrity_failure = isinstance(exc, IntegrityError)
        if not tracer._stack:
            tracer._finish_root(span, integrity_failure)
        return False


class Tracer:
    """Produces spans on a shared simulated clock.

    Finished *root* spans are retained in a bounded deque (``finished``)
    and forwarded to any registered sinks (exporters).  When a registry
    is attached, each finished root span feeds a per-operation latency
    histogram plus op/error counters -- that is the entire push-side
    coupling, one histogram observe per filesystem operation.
    """

    def __init__(self, clock: SimClock | None = None,
                 registry: MetricsRegistry | None = None,
                 max_finished: int = 100_000):
        self.clock = clock if clock is not None else SimClock()
        self.registry = registry
        #: Wire-trace correlation id (set by clients that propagate
        #: trace context to the SSP; ``None`` when wire tracing is off).
        self.trace_id: int | None = None
        self.finished: deque[Span] = deque(maxlen=max_finished)
        self._stack: list[Span] = []
        self._sinks: list[Callable[[Span], None]] = []
        self._next_id = 1
        self._op_histograms: dict[str, Any] = {}

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Register an exporter callback for finished root spans."""
        self._sinks.append(sink)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def span(self, name: str, **attrs: Any) -> _SpanScope:
        """Open a span: ``with tracer.span("resolve", path=p) as s:``."""
        return _SpanScope(self, name, attrs)

    def on_charge(self, category: str, seconds: float) -> None:
        """Cost-model hook: attribute a charge to the innermost span."""
        if self._stack:
            self._stack[-1].add_cost(category, seconds)

    def _finish_root(self, span: Span, integrity_failure: bool) -> None:
        self.finished.append(span)
        if self.registry is not None:
            histogram = self._op_histograms.get(span.name)
            if histogram is None:
                histogram = self.registry.histogram(
                    f"ops.{span.name}.seconds",
                    help=f"latency of {span.name}")
                self._op_histograms[span.name] = histogram
            histogram.observe(span.duration)
            self.registry.counter("ops.count").inc()
            if span.error is not None:
                self.registry.counter("ops.errors").inc()
            if integrity_failure:
                self.registry.counter(
                    "client.integrity_failures",
                    help="SSP tampering/rollback detections").inc()
        for sink in self._sinks:
            sink(span)

    def reset(self) -> None:
        """Drop finished spans (open spans are left untouched)."""
        self.finished.clear()


def traced(name: str, path_arg: int | None = 0):
    """Decorator: wrap a filesystem method in a root-or-child span.

    ``path_arg`` names the positional index (after ``self``) of a path
    argument to record on the span; ``None`` records no attrs.  The
    wrapped object must expose ``self.tracer``.
    """

    def decorate(fn):
        def wrapper(self, *args, **kwargs):
            attrs = {}
            if (path_arg is not None and len(args) > path_arg
                    and isinstance(args[path_arg], str)):
                attrs["path"] = args[path_arg]
            with self.tracer.span(name, **attrs):
                return fn(self, *args, **kwargs)
        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
