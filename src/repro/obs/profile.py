"""Profile export: folded stacks, speedscope JSON and self-time tables.

Renders finished span trees (live :class:`~repro.obs.tracing.Span`
objects, stitched client+server dicts from
:func:`~repro.obs.wiretrace.stitch`, or a spans JSONL file written by
``repro trace``) into the formats profiling tooling expects:

* **folded stacks** -- one ``frame;frame;frame <microseconds>`` line per
  unique stack, the input format of flamegraph.pl and many viewers;
* **speedscope** -- the evented JSON format of https://speedscope.app;
* **self-time table** -- top-N frames by *self* time (time not
  attributed to any child span), the "where does the time actually go"
  view;
* **resolve attribution** -- per-walk-depth cache hit/miss/seconds
  report quantifying where the path-resolve phase cost lives (the
  andrew workload spends ~44% of its wall in resolve; this report says
  which path depths pay it).

Timeline note: stitched server spans carry a *synthetic* timeline (see
``obs.wiretrace``) whose timestamps are not commensurate with the
client clock.  The speedscope export therefore reconstructs a timeline
bottom-up from span *widths* (self time plus children), which is exact
for both client spans (single-stack, non-overlapping children) and
synthetic server spans (children laid sequentially by construction).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Iterator

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


# -- span-tree plumbing ----------------------------------------------------


def _as_dict(span: Any) -> dict:
    """Accept either a live Span or an exported span dict."""
    if isinstance(span, dict):
        return span
    return span.to_dict()


def load_spans_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Read root span dicts from a ``repro trace`` JSONL file."""
    text = pathlib.Path(path).read_text()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _iter_tree(doc: dict) -> Iterator[dict]:
    yield doc
    for child in doc.get("children", ()):
        yield from _iter_tree(child)


def frame_label(doc: dict) -> str:
    """Human-stable frame name for one span.

    ``walk`` spans carry their path depth (``walk[2]``); spans with an
    ``op`` attr carry it (``network:get``, ``attempt:batch``); server
    spans are prefixed with their service tag (``ssp::server.get``) so
    client and server frames never alias in a stitched tree.
    """
    attrs = doc.get("attrs", {})
    name = doc.get("name", "?")
    if name == "walk":
        label = f"walk[{attrs.get('depth', '?')}]"
        cache = attrs.get("cache")
        return f"{label}:{cache}" if cache else label
    op = attrs.get("op")
    label = f"{name}:{op}" if op and not name.endswith(str(op)) else name
    service = attrs.get("service")
    if service:
        label = f"{service}::{label}"
    return label


def _children_width(doc: dict) -> float:
    return sum(_width(child) for child in doc.get("children", ()))


def _width(doc: dict) -> float:
    """Span width on the reconstructed timeline.

    ``max`` guards synthetic subtrees whose recorded duration is the
    authoritative width even if (due to rounding) it strays a hair from
    the children sum.
    """
    return max(float(doc.get("duration", 0.0)), _children_width(doc))


def _self_seconds(doc: dict) -> float:
    return max(0.0, float(doc.get("duration", 0.0)) - _children_width(doc))


# -- folded stacks ---------------------------------------------------------


def folded_stacks(roots: Iterable[Any], scale: float = 1e6) -> str:
    """Collapse span trees into flamegraph.pl folded-stack lines.

    Values are *self* times scaled to integer microseconds by default;
    identical stacks across operations aggregate into one line.
    """
    agg: dict[str, float] = {}

    def visit(doc: dict, prefix: list[str]) -> None:
        stack = prefix + [frame_label(doc)]
        self_s = _self_seconds(doc)
        if self_s > 0:
            key = ";".join(stack)
            agg[key] = agg.get(key, 0.0) + self_s
        for child in doc.get("children", ()):
            visit(child, stack)

    for root in roots:
        visit(_as_dict(root), [])
    lines = [f"{stack} {int(round(seconds * scale))}"
             for stack, seconds in sorted(agg.items())]
    return "\n".join(lines) + ("\n" if lines else "")


# -- speedscope ------------------------------------------------------------


def speedscope_document(roots: Iterable[Any],
                        name: str = "sharoes trace") -> dict:
    """Render span trees as a speedscope *evented* profile.

    Operations are concatenated on one timeline; events are balanced
    open/close pairs with non-decreasing ``at`` values (required by the
    speedscope loader).
    """
    frames: list[dict] = []
    frame_index: dict[str, int] = {}
    events: list[dict] = []

    def fidx(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    def visit(doc: dict, start: float) -> float:
        index = fidx(frame_label(doc))
        events.append({"type": "O", "frame": index, "at": round(start, 9)})
        cursor = start
        for child in doc.get("children", ()):
            cursor = visit(child, cursor)
        end = start + _width(doc)
        events.append({"type": "C", "frame": index, "at": round(end, 9)})
        return end

    cursor = 0.0
    for root in roots:
        cursor = visit(_as_dict(root), cursor)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro profile",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "seconds",
            "startValue": 0,
            "endValue": round(cursor, 9),
            "events": events,
        }],
    }


# -- top-N self time -------------------------------------------------------


def self_time_report(roots: Iterable[Any], top: int = 15) -> list[dict]:
    """Top-N frames by aggregate self time.

    Each row: ``frame`` label, ``count`` of spans, ``self_s`` aggregate
    self seconds, ``total_s`` aggregate inclusive seconds, ``share`` of
    run-wide self time.
    """
    agg: dict[str, list[float]] = {}
    grand_total = 0.0
    for root in roots:
        for doc in _iter_tree(_as_dict(root)):
            label = frame_label(doc)
            row = agg.setdefault(label, [0.0, 0, 0.0])
            self_s = _self_seconds(doc)
            row[0] += self_s
            row[1] += 1
            row[2] += _width(doc)
            grand_total += self_s
    rows = sorted(agg.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top]
    return [{"frame": label,
             "count": int(count),
             "self_s": round(self_s, 9),
             "total_s": round(total_s, 9),
             "share": round(self_s / grand_total, 6) if grand_total else 0.0}
            for label, (self_s, count, total_s) in rows]


def format_self_time_table(report: list[dict],
                           title: str = "top self time") -> str:
    from ..workloads.report import format_table
    rows = [[row["frame"], str(row["count"]),
             f"{row['self_s'] * 1000:.3f}", f"{row['total_s'] * 1000:.3f}",
             f"{row['share'] * 100:.1f}%"] for row in report]
    return format_table(title, ["frame", "n", "self ms", "total ms",
                                "share"], rows)


# -- per-walk-depth resolve attribution ------------------------------------


def resolve_attribution(roots: Iterable[Any]) -> dict:
    """Per-path-depth cache attribution of the resolve phase.

    Reads the ``walk`` spans the client opens around every path
    component lookup; each carries ``depth`` and a ``cache`` verdict
    ("hit" when the component resolved without a demand fetch).  The
    output quantifies *where* resolve cost lives: which depths walk the
    most, miss the most, and pay the most simulated seconds.
    """
    depths: dict[int, dict[str, float]] = {}
    for root in roots:
        for doc in _iter_tree(_as_dict(root)):
            if doc.get("name") != "walk":
                continue
            attrs = doc.get("attrs", {})
            depth = int(attrs.get("depth", 0))
            entry = depths.setdefault(
                depth, {"walks": 0, "hits": 0, "misses": 0, "seconds": 0.0})
            entry["walks"] += 1
            if attrs.get("cache") == "miss":
                entry["misses"] += 1
            else:
                entry["hits"] += 1
            entry["seconds"] += float(doc.get("duration", 0.0))
    totals = {"walks": 0, "hits": 0, "misses": 0, "seconds": 0.0}
    for entry in depths.values():
        for key in totals:
            totals[key] += entry[key]
        entry["seconds"] = round(entry["seconds"], 9)
    totals["seconds"] = round(totals["seconds"], 9)
    totals["miss_rate"] = (round(totals["misses"] / totals["walks"], 6)
                           if totals["walks"] else 0.0)
    return {"depths": {str(depth): depths[depth]
                       for depth in sorted(depths)},
            "totals": totals}


def format_resolve_table(report: dict,
                         title: str = "resolve attribution") -> str:
    from ..workloads.report import format_table
    total_s = report["totals"]["seconds"] or 1.0
    rows = []
    for depth, entry in report["depths"].items():
        rows.append([depth, str(int(entry["walks"])),
                     str(int(entry["hits"])), str(int(entry["misses"])),
                     f"{entry['seconds'] * 1000:.3f}",
                     f"{entry['seconds'] / total_s * 100:.1f}%"])
    totals = report["totals"]
    rows.append(["TOTAL", str(int(totals["walks"])),
                 str(int(totals["hits"])), str(int(totals["misses"])),
                 f"{totals['seconds'] * 1000:.3f}", "100.0%"])
    return format_table(title, ["depth", "walks", "hits", "misses",
                                "ms", "share"], rows)
