"""Pluggable exporters: JSON-lines spans, Prometheus text, tables.

Three consumers of the same observability tree:

* machines replaying a run read the **JSON-lines span log** (one root
  span per line, children nested);
* scrape-style tooling reads the **Prometheus text dump** of a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* humans read the **tables** (``repro stats``).
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import IO, Iterable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import PHASES, Span


class JsonLinesSpanExporter:
    """Collects finished root spans as JSON-lines.

    Attach with ``tracer.add_sink(exporter)``; read back ``.lines`` (in
    memory) or stream to a file object passed as ``stream``.
    """

    def __init__(self, stream: IO[str] | None = None):
        self.lines: list[str] = []
        self._stream = stream

    def __call__(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), separators=(",", ":"),
                          sort_keys=True)
        self.lines.append(line)
        if self._stream is not None:
            self._stream.write(line + "\n")

    def records(self) -> list[dict]:
        return [json.loads(line) for line in self.lines]

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text("\n".join(self.lines) + ("\n" if self.lines
                                                 else ""))
        return path


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Render already-finished root spans as a JSON-lines document."""
    return "\n".join(json.dumps(span.to_dict(), separators=(",", ":"),
                                sort_keys=True) for span in spans)


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name.replace(".", "_"))


def _prom_escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_escape_label(text: str) -> str:
    """Escape a label *value* per the exposition format."""
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def prometheus_text(registry: MetricsRegistry,
                    namespace: str = "sharoes") -> str:
    """Prometheus exposition-format dump of the registry.

    Pull sources are exported as gauges (their legacy structs do not
    distinguish counters from gauges) and carry ``# TYPE``/``# HELP``
    metadata like first-class metrics; histograms use the standard
    ``_bucket``/``_sum``/``_count`` triplet with ``le`` labels.  Help
    strings and label values are escaped per the exposition format.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, value_lines: list[str],
             help: str = "") -> None:
        if help:
            lines.append(f"# HELP {name} {_prom_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(value_lines)

    for metric in registry.metrics():
        name = f"{namespace}_{_prom_name(metric.name)}"
        if isinstance(metric, Counter):
            emit(name, "counter", [f"{name} {metric.value}"], metric.help)
        elif isinstance(metric, Gauge):
            emit(name, "gauge", [f"{name} {metric.value}"], metric.help)
        elif isinstance(metric, Histogram):
            rows = []
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                label = _prom_escape_label(str(bound))
                rows.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
            rows.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            rows.append(f"{name}_sum {metric.total}")
            rows.append(f"{name}_count {metric.count}")
            emit(name, "histogram", rows, metric.help)
    for prefix, collect in registry._sources.items():
        help = registry.source_help(prefix)
        for suffix, value in sorted(collect().items()):
            name = f"{namespace}_{_prom_name(prefix)}_{_prom_name(suffix)}"
            emit(name, "gauge", [f"{name} {value}"], help)
    return "\n".join(lines) + "\n"


def metrics_table(registry: MetricsRegistry,
                  title: str = "metrics") -> str:
    """Human-readable two-column dump of the full snapshot tree."""
    # Imported lazily: the workloads package pulls in the filesystem
    # client, which itself imports repro.obs.
    from ..workloads.report import format_table
    rows = []
    for name, value in registry.snapshot().items():
        if isinstance(value, float) and not value.is_integer():
            rows.append([name, f"{value:.6g}"])
        else:
            rows.append([name, str(int(value))])
    return format_table(title, ["metric", "value"], rows)


def op_table(report: dict, title: str = "per-operation costs") -> str:
    """Render an op report (see obs.bench) as the ``repro stats`` table.

    Shows the same numbers the ``BENCH_*.json`` carries: per-op count,
    mean/p50/p95/p99 latency (ms) and the phase decomposition (ms).
    """
    from ..workloads.report import format_table
    headers = (["operation", "n", "mean ms", "p50", "p95", "p99"]
               + [f"{p} ms" for p in PHASES])
    rows = []
    for op, entry in sorted(report["ops"].items()):
        summary = entry["seconds"]
        rows.append(
            [op, str(summary["n"])]
            + [f"{summary[k] * 1000:.1f}"
               for k in ("mean", "p50", "p95", "p99")]
            + [f"{entry['phases'][p] * 1000:.1f}" for p in PHASES])
    totals = report["totals"]
    rows.append(["TOTAL", str(totals["spans"]),
                 f"{totals['seconds'] * 1000:.1f}", "-", "-", "-"]
                + [f"{totals['phases'][p] * 1000:.1f}" for p in PHASES])
    return format_table(title, headers, rows)
