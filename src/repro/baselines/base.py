"""Comparator wide-area filesystems (paper section V's four baselines).

These share one implementation whose metadata/data protection is supplied
by :mod:`repro.baselines.codecs`.  The filesystem semantics mirror the
SHAROES client's operation vocabulary (so workloads drive either
identically), but there is a single metadata copy per object and key
distribution is out-of-band (the shared keystore) -- exactly the modelling
the paper uses: the baselines isolate the *cryptographic* cost differences
on the same networking substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.provider import CryptoProvider
from ..errors import (BlobNotFound, DirectoryNotEmpty, FileExists,
                      FileNotFound, FilesystemError, IsADirectory,
                      NotADirectory)
from ..fs import path as fspath
from ..fs.cache import LruCache
from ..fs.client import ClientConfig
from ..fs.inode import InodeAllocator
from ..fs.metadata import MetadataAttrs, Stat
from ..fs.permissions import DIRECTORY, FILE
from ..obs.metrics import (MetricsRegistry, bind_cache_stats,
                           bind_cost_model, bind_crypto_counters,
                           bind_server_stats)
from ..obs.tracing import Tracer, traced
from ..principals.users import User
from ..serialize import Reader, Writer
from ..sim.costmodel import CostModel
from ..storage.blobs import BlobId, data_blob, meta_blob
from ..storage.server import StorageServer
from .codecs import (DataCodec, MetadataCodec, PlainData, PlainMetadata,
                     PubOptMetadata, PublicMetadata, SharedKeyStore,
                     SymmetricData)

_REQUEST_HEADER_BYTES = 64
_RESPONSE_HEADER_BYTES = 16


def _table_payload(entries: dict[str, int]) -> bytes:
    writer = Writer()
    writer.put_int(len(entries))
    for name in sorted(entries):
        writer.put_str(name)
        writer.put_int(entries[name])
    return writer.getvalue()


def _parse_table(raw: bytes) -> dict[str, int]:
    reader = Reader(raw)
    entries = {reader.get_str(): reader.get_int()
               for _ in range(reader.get_int())}
    reader.expect_end()
    return entries


@dataclass
class BaselineVolume:
    """Deployment state shared by all clients of one baseline filesystem."""

    server: StorageServer
    keystore: SharedKeyStore = field(default_factory=SharedKeyStore)
    allocator: InodeAllocator = field(default_factory=InodeAllocator)
    root_inode: int | None = None

    def format(self, owner: str = "admin", group: str = "users",
               provider: CryptoProvider | None = None,
               metadata_codec: MetadataCodec | None = None,
               data_codec: DataCodec | None = None,
               admin_key=None) -> None:
        """Create the root directory object."""
        provider = provider or CryptoProvider()
        metadata_codec = metadata_codec or PlainMetadata()
        data_codec = data_codec or PlainData()
        inode = self.allocator.allocate()
        attrs = MetadataAttrs(inode=inode, ftype=DIRECTORY, owner=owner,
                              group=group, mode=0o755)
        writer = Writer()
        attrs.to_writer(writer)
        self.server.put(
            meta_blob(inode, "-"),
            metadata_codec.encode(provider, self.keystore, inode,
                                  writer.getvalue(), admin_key))
        self.server.put(
            data_blob(inode, "t"),
            data_codec.encode(provider, self.keystore, inode,
                              _table_payload({})))
        self.root_inode = inode


class BaselineFilesystem:
    """One mounted comparator client."""

    #: subclass hook: (metadata codec class, data codec class)
    metadata_codec_cls: type[MetadataCodec] = PlainMetadata
    data_codec_cls: type[DataCodec] = PlainData
    name = "baseline"

    def __init__(self, volume: BaselineVolume, user: User,
                 cost_model: CostModel | None = None,
                 config: ClientConfig | None = None):
        self.volume = volume
        self.user = user
        self.config = config or ClientConfig()
        self.provider = CryptoProvider(self.config.engine or "stream")
        self.cost = cost_model
        if cost_model is not None:
            self.provider.add_listener(cost_model.on_crypto_event)
        self.cache = LruCache(self.config.cache_bytes)
        self._meta = self.metadata_codec_cls()
        self._data = self.data_codec_cls()
        #: same observability surface as the SHAROES client, so the
        #: comparator figures carry identical per-phase breakdowns.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock=cost_model.clock if cost_model is not None else None,
            registry=self.metrics)
        if cost_model is not None:
            cost_model.tracer = self.tracer
            bind_cost_model(self.metrics, cost_model)
        bind_cache_stats(self.metrics, self.cache)
        bind_crypto_counters(self.metrics, self.provider)
        bind_server_stats(self.metrics, volume.server)

    # -- wire -----------------------------------------------------------------

    def _charge_other(self) -> None:
        if self.cost is not None:
            self.cost.charge_other()

    def _get(self, blob_id: BlobId) -> bytes:
        with self.tracer.span("network", op="get", kind=blob_id.kind):
            try:
                payload = self.volume.server.get(blob_id)
            except BlobNotFound:
                if self.cost is not None:
                    self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                             _RESPONSE_HEADER_BYTES)
                raise
            if self.cost is not None:
                self.cost.charge_request(
                    _REQUEST_HEADER_BYTES,
                    len(payload) + _RESPONSE_HEADER_BYTES)
            return payload

    def _put(self, blob_id: BlobId, payload: bytes) -> None:
        with self.tracer.span("network", op="put", kind=blob_id.kind):
            if self.cost is not None:
                self.cost.charge_request(
                    len(payload) + _REQUEST_HEADER_BYTES,
                    _RESPONSE_HEADER_BYTES)
            self.volume.server.put(blob_id, payload)

    def _delete(self, blob_id: BlobId) -> None:
        with self.tracer.span("network", op="delete", kind=blob_id.kind):
            if self.cost is not None:
                self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                         _RESPONSE_HEADER_BYTES)
            self.volume.server.delete(blob_id)

    # -- internals ---------------------------------------------------------------

    @traced("mount", path_arg=None)
    def mount(self) -> None:
        """Baselines have no superblock handshake; mount is a no-op hook."""

    def revalidate(self) -> None:
        """Close-to-open boundary: drop cached metadata and tables.

        Baselines always use the conservative model -- they have no
        signed versions to pin a verified cache on.
        """
        self.cache.invalidate_prefix(("meta",))
        self.cache.invalidate_prefix(("table",))

    def _root(self) -> int:
        if self.volume.root_inode is None:
            raise FilesystemError("volume is not formatted")
        return self.volume.root_inode

    def _fetch_attrs(self, inode: int) -> MetadataAttrs:
        key = ("meta", inode)
        if self.config.metadata_cache:
            cached = self.cache.get(key)
            if cached is not None:
                with self.tracer.span("cache", hit=True, kind="meta"):
                    return cached
        blob = self._get(meta_blob(inode, "-"))
        payload = self._meta.decode(self.provider, self.volume.keystore,
                                    inode, blob, self.user.keypair)
        attrs = MetadataAttrs.from_reader(Reader(payload))
        if self.config.metadata_cache:
            self.cache.put(key, attrs, len(blob))
        return attrs

    def _write_attrs(self, attrs: MetadataAttrs) -> None:
        writer = Writer()
        attrs.to_writer(writer)
        blob = self._meta.encode(self.provider, self.volume.keystore,
                                 attrs.inode, writer.getvalue(),
                                 self.user.keypair)
        self._put(meta_blob(attrs.inode, "-"), blob)
        if self.config.metadata_cache:
            # Write-through: no need to re-fetch our own write.
            self.cache.put(("meta", attrs.inode), attrs, len(blob))

    def _fetch_table(self, inode: int) -> dict[str, int]:
        key = ("table", inode)
        if self.config.metadata_cache:
            cached = self.cache.get(key)
            if cached is not None:
                with self.tracer.span("cache", hit=True, kind="table"):
                    return cached
        blob = self._get(data_blob(inode, "t"))
        entries = _parse_table(self._data.decode(
            self.provider, self.volume.keystore, inode, blob))
        if self.config.metadata_cache:
            self.cache.put(key, entries, len(blob))
        return entries

    def _write_table(self, inode: int, entries: dict[str, int]) -> None:
        blob = self._data.encode(self.provider, self.volume.keystore,
                                 inode, _table_payload(entries))
        self._put(data_blob(inode, "t"), blob)
        if self.config.metadata_cache:
            # Write-through: no need to re-fetch our own write.
            self.cache.put(("table", inode), entries, len(blob))

    def _resolve(self, path: str) -> MetadataAttrs:
        with self.tracer.span("resolve", path=path):
            inode = self._root()
            attrs = self._fetch_attrs(inode)
            for name in fspath.split_path(path):
                if attrs.ftype != DIRECTORY:
                    raise NotADirectory(path)
                entries = self._fetch_table(attrs.inode)
                if name not in entries:
                    raise FileNotFound(path)
                attrs = self._fetch_attrs(entries[name])
            return attrs

    def _resolve_parent(self, path: str) -> tuple[MetadataAttrs, str]:
        parent_path, name = fspath.parent_and_name(path)
        parent = self._resolve(parent_path)
        if parent.ftype != DIRECTORY:
            raise NotADirectory(parent_path)
        return parent, name

    # -- operations ---------------------------------------------------------------

    @traced("getattr")
    def getattr(self, path: str) -> Stat:
        self._charge_other()
        return Stat.from_attrs(self._resolve(path))

    @traced("readdir")
    def readdir(self, path: str) -> list[str]:
        self._charge_other()
        attrs = self._resolve(path)
        if attrs.ftype != DIRECTORY:
            raise NotADirectory(path)
        return sorted(self._fetch_table(attrs.inode))

    def _create(self, path: str, mode: int, ftype: str) -> Stat:
        self._charge_other()
        parent, name = self._resolve_parent(path)
        entries = self._fetch_table(parent.inode)
        if name in entries:
            raise FileExists(path)
        inode = self.volume.allocator.allocate()
        attrs = MetadataAttrs(inode=inode, ftype=ftype,
                              owner=self.user.user_id, group=parent.group,
                              mode=mode)
        self._write_attrs(attrs)
        if ftype == DIRECTORY:
            self._write_table(inode, {})
        entries = dict(entries)
        entries[name] = inode
        self._write_table(parent.inode, entries)
        return Stat.from_attrs(attrs)

    @traced("mknod")
    def mknod(self, path: str, mode: int = 0o644) -> Stat:
        return self._create(path, mode, FILE)

    @traced("mkdir")
    def mkdir(self, path: str, mode: int = 0o755) -> Stat:
        return self._create(path, mode, DIRECTORY)

    @traced("read_file")
    def read_file(self, path: str) -> bytes:
        self._charge_other()
        attrs = self._resolve(path)
        if attrs.ftype != FILE:
            raise IsADirectory(path)
        key = ("data", attrs.inode)
        if self.config.data_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        try:
            blob = self._get(data_blob(attrs.inode, "b"))
        except BlobNotFound:
            return b""
        content = self._data.decode(self.provider, self.volume.keystore,
                                    attrs.inode, blob)
        if self.config.data_cache:
            self.cache.put(key, content, len(content))
        return content

    @traced("write_file")
    def write_file(self, path: str, content: bytes) -> None:
        """Write + close: encrypt the file and send it (paper Fig. 8)."""
        self._charge_other()
        attrs = self._resolve(path)
        if attrs.ftype != FILE:
            raise IsADirectory(path)
        blob = self._data.encode(self.provider, self.volume.keystore,
                                 attrs.inode, content)
        self._put(data_blob(attrs.inode, "b"), blob)
        if self.config.data_cache:
            self.cache.put(("data", attrs.inode), content, len(content))

    @traced("append_file")
    def append_file(self, path: str, content: bytes) -> None:
        existing = self.read_file(path)
        self.write_file(path, existing + content)

    @traced("create_file")
    def create_file(self, path: str, content: bytes = b"",
                    mode: int = 0o644) -> Stat:
        stat = self.mknod(path, mode)
        if content:
            self.write_file(path, content)
        return stat

    @traced("chmod")
    def chmod(self, path: str, mode: int) -> Stat:
        """Modify metadata, re-encode, send (paper Fig. 8's chmod)."""
        self._charge_other()
        attrs = self._resolve(path)
        attrs = attrs.copy()
        attrs.mode = mode
        attrs.version += 1
        self._write_attrs(attrs)
        return Stat.from_attrs(attrs)

    @traced("unlink")
    def unlink(self, path: str) -> None:
        self._charge_other()
        parent, name = self._resolve_parent(path)
        entries = dict(self._fetch_table(parent.inode))
        if name not in entries:
            raise FileNotFound(path)
        inode = entries.pop(name)
        victim = self._fetch_attrs(inode)
        if victim.ftype != FILE:
            raise IsADirectory(path)
        self._write_table(parent.inode, entries)
        if self.cost is not None:
            # One batched delete request for both blobs.
            self.cost.charge_request(2 * _REQUEST_HEADER_BYTES,
                                     _RESPONSE_HEADER_BYTES)
        self.volume.server.delete(meta_blob(inode, "-"))
        self.volume.server.delete(data_blob(inode, "b"))
        self.volume.keystore.forget(inode)
        self.cache.invalidate(("meta", inode))
        self.cache.invalidate(("data", inode))

    @traced("rmdir")
    def rmdir(self, path: str) -> None:
        self._charge_other()
        parent, name = self._resolve_parent(path)
        entries = dict(self._fetch_table(parent.inode))
        if name not in entries:
            raise FileNotFound(path)
        inode = entries[name]
        victim = self._fetch_attrs(inode)
        if victim.ftype != DIRECTORY:
            raise NotADirectory(path)
        if self._fetch_table(inode):
            raise DirectoryNotEmpty(path)
        del entries[name]
        self._write_table(parent.inode, entries)
        if self.cost is not None:
            self.cost.charge_request(2 * _REQUEST_HEADER_BYTES,
                                     _RESPONSE_HEADER_BYTES)
        self.volume.server.delete(meta_blob(inode, "-"))
        self.volume.server.delete(data_blob(inode, "t"))
        self.volume.keystore.forget(inode)


class NoEncMdD(BaselineFilesystem):
    """NO-ENC-MD-D: nothing encrypted (pure networking baseline)."""

    name = "no-enc-md-d"
    metadata_codec_cls = PlainMetadata
    data_codec_cls = PlainData


class NoEncMd(BaselineFilesystem):
    """NO-ENC-MD: plaintext metadata, symmetric data."""

    name = "no-enc-md"
    metadata_codec_cls = PlainMetadata
    data_codec_cls = SymmetricData


class PublicFs(BaselineFilesystem):
    """PUBLIC: public-key metadata (SiRiUS/SNAD/Farsite style)."""

    name = "public"
    metadata_codec_cls = PublicMetadata
    data_codec_cls = SymmetricData


class PubOptFs(BaselineFilesystem):
    """PUB-OPT: symmetric metadata, public-key-wrapped metadata keys."""

    name = "pub-opt"
    metadata_codec_cls = PubOptMetadata
    data_codec_cls = SymmetricData


BASELINES: dict[str, type[BaselineFilesystem]] = {
    cls.name: cls for cls in (NoEncMdD, NoEncMd, PublicFs, PubOptFs)}


def make_baseline_volume(name: str, server: StorageServer,
                         admin: User) -> BaselineVolume:
    """Create and format a volume for the named baseline."""
    cls = BASELINES[name]
    volume = BaselineVolume(server=server)
    volume.format(owner=admin.user_id,
                  metadata_codec=cls.metadata_codec_cls(),
                  data_codec=cls.data_codec_cls(),
                  admin_key=admin.keypair)
    return volume
