"""The paper's four comparator filesystems (section V)."""

from .base import (BASELINES, BaselineFilesystem, BaselineVolume, NoEncMd,
                   NoEncMdD, PubOptFs, PublicFs, make_baseline_volume)
from .codecs import (PUBLIC_METADATA_BYTES, PUBOPT_LOCKBOX_COUNT, DataCodec,
                     MetadataCodec, PlainData, PlainMetadata, PubOptMetadata,
                     PublicMetadata, SharedKeyStore, SymmetricData)

__all__ = [
    "BaselineFilesystem",
    "BaselineVolume",
    "BASELINES",
    "NoEncMdD",
    "NoEncMd",
    "PublicFs",
    "PubOptFs",
    "make_baseline_volume",
    "MetadataCodec",
    "DataCodec",
    "PlainMetadata",
    "PublicMetadata",
    "PubOptMetadata",
    "PlainData",
    "SymmetricData",
    "SharedKeyStore",
    "PUBLIC_METADATA_BYTES",
    "PUBOPT_LOCKBOX_COUNT",
]
