"""Metadata/data protection strategies for the comparator filesystems.

The paper's evaluation (section V) compares SHAROES against four
implementations that differ only in how metadata and data are protected:

* **NO-ENC-MD-D** -- nothing encrypted: the networking/implementation
  baseline for a wide-area filesystem.
* **NO-ENC-MD**  -- plaintext metadata, symmetric-encrypted data.
* **PUBLIC**     -- metadata objects encrypted *with public-key crypto*
  (representative of SiRiUS/SNAD/Farsite).  A metadata object is a ~4 KB
  SiRiUS-style structure (per-user lockboxes + signature), so every stat
  pays ~17 RSA-2048 private-block operations -- the source of the
  catastrophic "ls -lR" number in Figure 9.
* **PUB-OPT**    -- metadata sealed with a symmetric key, with only that
  key wrapped under public keys (three lockboxes: owner/group/other), so a
  stat pays exactly one private-block operation.

Data (including directory tables, which are directory *data blocks*) is
symmetric in all but NO-ENC-MD-D.  The comparators distribute their
symmetric keys through a client-side shared keystore, modelling the
out-of-band key distribution the related work assumes -- key management is
exactly what SHAROES improves on, so the baselines get it for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..crypto import rsa
from ..crypto.keys import new_symmetric_key
from ..crypto.provider import CryptoProvider
from ..errors import CryptoError
from ..serialize import Reader, Writer

#: Size of a SiRiUS-style public-key metadata object (see module docstring
#: and DESIGN.md's calibration: 4 KB = 17 nominal RSA-2048 blocks).
PUBLIC_METADATA_BYTES = 4096

#: PUB-OPT wraps the metadata key for owner, group and other principals.
PUBOPT_LOCKBOX_COUNT = 3


class SharedKeyStore:
    """Client-side symmetric keys for the baseline implementations.

    Models out-of-band key distribution (email, USB sticks -- what
    Plutus/CNFS actually proposed): every client of a baseline volume
    shares this in-memory map.  SHAROES itself never uses it.
    """

    def __init__(self) -> None:
        self._keys: dict[tuple[str, int], bytes] = {}

    def key_for(self, kind: str, inode: int) -> bytes:
        try:
            return self._keys[(kind, inode)]
        except KeyError:
            raise CryptoError(
                f"no {kind} key distributed for inode {inode}") from None

    def ensure(self, kind: str, inode: int) -> bytes:
        return self._keys.setdefault((kind, inode), new_symmetric_key())

    def rotate(self, kind: str, inode: int) -> bytes:
        self._keys[(kind, inode)] = new_symmetric_key()
        return self._keys[(kind, inode)]

    def forget(self, inode: int) -> None:
        for key in [k for k in self._keys if k[1] == inode]:
            del self._keys[key]


class MetadataCodec(ABC):
    """How a baseline protects metadata objects at rest."""

    name: str

    @abstractmethod
    def encode(self, provider: CryptoProvider, keystore: SharedKeyStore,
               inode: int, payload: bytes,
               reader_key: rsa.KeyPair) -> bytes: ...

    @abstractmethod
    def decode(self, provider: CryptoProvider, keystore: SharedKeyStore,
               inode: int, blob: bytes,
               reader_key: rsa.KeyPair) -> bytes: ...


class PlainMetadata(MetadataCodec):
    """No protection (both NO-ENC variants)."""

    name = "plain"

    def encode(self, provider, keystore, inode, payload, reader_key):
        return payload

    def decode(self, provider, keystore, inode, blob, reader_key):
        return blob


class PublicMetadata(MetadataCodec):
    """Whole metadata object under public-key crypto (PUBLIC).

    The object is padded to the SiRiUS-style 4 KB before encryption: the
    real systems carry per-user key lockboxes and signatures inside, and
    that size is what the paper's numbers imply (DESIGN.md section 4).
    """

    name = "public"

    def encode(self, provider, keystore, inode, payload, reader_key):
        if len(payload) > PUBLIC_METADATA_BYTES - 4:
            raise CryptoError("metadata exceeds the PUBLIC object size")
        padded = (len(payload).to_bytes(4, "big") + payload).ljust(
            PUBLIC_METADATA_BYTES, b"\x00")
        return provider.pk_encrypt(reader_key.public, padded)

    def decode(self, provider, keystore, inode, blob, reader_key):
        padded = provider.pk_decrypt(reader_key.private, blob)
        length = int.from_bytes(padded[:4], "big")
        return padded[4:4 + length]


class PubOptMetadata(MetadataCodec):
    """Symmetric metadata + public-key-wrapped key (PUB-OPT).

    Create wraps the fresh metadata key for the three permission
    principals (3 public-block ops); a read unwraps one lockbox (1
    private-block op) and then decrypts symmetrically.
    """

    name = "pub-opt"

    def encode(self, provider, keystore, inode, payload, reader_key):
        key = keystore.ensure("meta", inode)
        sealed = provider.sym_encrypt(key, payload)
        writer = Writer()
        writer.put_bytes(sealed)
        writer.put_int(PUBOPT_LOCKBOX_COUNT)
        for _ in range(PUBOPT_LOCKBOX_COUNT):
            writer.put_bytes(provider.pk_encrypt(reader_key.public, key))
        return writer.getvalue()

    def decode(self, provider, keystore, inode, blob, reader_key):
        reader = Reader(blob)
        sealed = reader.get_bytes()
        count = reader.get_int()
        lockboxes = [reader.get_bytes() for _ in range(count)]
        key = provider.pk_decrypt(reader_key.private, lockboxes[0])
        return provider.sym_decrypt(key, sealed)


class DataCodec(ABC):
    """How a baseline protects data blocks (and directory tables)."""

    name: str

    @abstractmethod
    def encode(self, provider: CryptoProvider, keystore: SharedKeyStore,
               inode: int, payload: bytes) -> bytes: ...

    @abstractmethod
    def decode(self, provider: CryptoProvider, keystore: SharedKeyStore,
               inode: int, blob: bytes) -> bytes: ...


class PlainData(DataCodec):
    name = "plain"

    def encode(self, provider, keystore, inode, payload):
        return payload

    def decode(self, provider, keystore, inode, blob):
        return blob


class SymmetricData(DataCodec):
    name = "symmetric"

    def encode(self, provider, keystore, inode, payload):
        return provider.sym_encrypt(keystore.ensure("data", inode), payload)

    def decode(self, provider, keystore, inode, blob):
        return provider.sym_decrypt(keystore.key_for("data", inode), blob)
